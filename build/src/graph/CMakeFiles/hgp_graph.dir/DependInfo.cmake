
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generators.cpp" "src/graph/CMakeFiles/hgp_graph.dir/generators.cpp.o" "gcc" "src/graph/CMakeFiles/hgp_graph.dir/generators.cpp.o.d"
  "/root/repo/src/graph/gomory_hu.cpp" "src/graph/CMakeFiles/hgp_graph.dir/gomory_hu.cpp.o" "gcc" "src/graph/CMakeFiles/hgp_graph.dir/gomory_hu.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/graph/CMakeFiles/hgp_graph.dir/graph.cpp.o" "gcc" "src/graph/CMakeFiles/hgp_graph.dir/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/graph/CMakeFiles/hgp_graph.dir/io.cpp.o" "gcc" "src/graph/CMakeFiles/hgp_graph.dir/io.cpp.o.d"
  "/root/repo/src/graph/maxflow.cpp" "src/graph/CMakeFiles/hgp_graph.dir/maxflow.cpp.o" "gcc" "src/graph/CMakeFiles/hgp_graph.dir/maxflow.cpp.o.d"
  "/root/repo/src/graph/mincut.cpp" "src/graph/CMakeFiles/hgp_graph.dir/mincut.cpp.o" "gcc" "src/graph/CMakeFiles/hgp_graph.dir/mincut.cpp.o.d"
  "/root/repo/src/graph/spectral.cpp" "src/graph/CMakeFiles/hgp_graph.dir/spectral.cpp.o" "gcc" "src/graph/CMakeFiles/hgp_graph.dir/spectral.cpp.o.d"
  "/root/repo/src/graph/tree.cpp" "src/graph/CMakeFiles/hgp_graph.dir/tree.cpp.o" "gcc" "src/graph/CMakeFiles/hgp_graph.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hgp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
