# Empty compiler generated dependencies file for hgp_graph.
# This may be replaced when dependencies are built.
