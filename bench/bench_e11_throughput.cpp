// E11 — closing the motivation loop (§1): the Eq.-1 objective tracks
// sustainable throughput.
//
// The paper optimizes an abstract LCA-priced cost because pinning
// communicating tasks near each other raises stream throughput.  This
// experiment checks the premise on a tapered-bandwidth machine model:
// over a spread of placements (all algorithms + random perturbations),
// cheaper placements sustain higher rates; the rank correlation between
// cost and 1/throughput should be strongly positive, and the solver's
// placement should be at or near the best sustained rate.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "exp/algorithms.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "obs/metrics.hpp"
#include "sim/throughput.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hgp {
namespace {

double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  auto ranks = [&](const std::vector<double>& v) {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) r[idx[i]] = static_cast<double>(i);
    return r;
  };
  const auto rx = ranks(x), ry = ranks(y);
  double sx = 0, sy = 0, sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += rx[i];
    sy += ry[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (rx[i] - mx) * (ry[i] - my);
    sxx += (rx[i] - mx) * (rx[i] - mx);
    syy += (ry[i] - my) * (ry[i] - my);
  }
  return sxy / std::sqrt(sxx * syy);
}

int run() {
  exp::print_header("E11", "cost vs sustainable throughput (§1 motivation)",
                    "cheaper Eq.-1 placements sustain higher rates on a "
                    "tapered-bandwidth machine (rank correlation > 0.5)");
  const Hierarchy h = exp::hierarchy_socket_core_ht();
  Timer bench_timer;
  bool all_ok = true;
  Table table({"family", "placements", "spearman(cost, 1/throughput)",
               "solver rate", "best rate", "random rate"});
  for (const auto family :
       {exp::Family::StreamDag, exp::Family::PlantedPartition,
        exp::Family::ScaleFree}) {
    const Graph g = exp::make_workload(family, 64, h, 7, 0.5);
    const sim::MachineModel model = sim::MachineModel::tapered(
        h.height(), g.total_edge_weight() / 2.0, 3.0);
    std::vector<double> costs, inv_rate;
    double solver_rate = 0, random_rate = 0, best_rate = 0;
    for (const auto& a : exp::comparison_algorithms(0.5, 2, 8)) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto res = a.run(g, h, seed);
        const auto rep = analyze_throughput(g, h, res.placement, model);
        costs.push_back(res.cost);
        inv_rate.push_back(1.0 / rep.throughput);
        best_rate = std::max(best_rate, rep.throughput);
        if (a.name == "hgp-dp" && seed == 1) solver_rate = rep.throughput;
        if (a.name == "random" && seed == 1) random_rate = rep.throughput;
      }
    }
    const double rho = spearman(costs, inv_rate);
    table.row()
        .add(exp::family_name(family))
        .add(static_cast<std::int64_t>(costs.size()))
        .add(rho)
        .add(solver_rate)
        .add(best_rate)
        .add(random_rate);
    all_ok &= rho > 0.5;
    all_ok &= solver_rate >= random_rate;
  }
  table.print(std::cout);
  std::printf("\n");
  const bool ok = exp::check(
      "cost rank-correlates with inverse throughput (> 0.5) and the solver "
      "sustains at least the oblivious rate", all_ok);
  // DP counters come from the metrics registry (zero under HGP_OBS=OFF);
  // scripts/run_benches.sh persists this line as BENCH_e11_throughput.json.
  const obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  std::printf(
      "BENCH_JSON: {\"n\": 64, \"solve_ms\": %.1f, \"dp_solves\": %llu, "
      "\"dp_signatures\": %llu, \"dp_merge_operations\": %llu}\n",
      bench_timer.millis(),
      static_cast<unsigned long long>(reg.counter_value("dp.solves")),
      static_cast<unsigned long long>(reg.counter_value("dp.signatures")),
      static_cast<unsigned long long>(
          reg.counter_value("dp.merge_operations")));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
