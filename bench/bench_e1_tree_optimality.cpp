// E1 — Theorem 2 / Theorem 4 on trees.
//
// On instances small enough for the exact branch-and-bound oracle, the tree
// solver's cost must not exceed the violation-free HGPT optimum (the DP
// solves the *relaxation* optimally, and the Theorem-5 conversion never
// increases cost), while its capacity violation stays within (1+ε)(1+h).
#include <cstdio>
#include <iostream>

#include "baseline/exact.hpp"
#include "core/tree_solver.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

int run() {
  exp::print_header(
      "E1", "tree solver vs exact optimum (Theorems 2 and 4)",
      "cost(DP+conversion) <= OPT_HGPT; violation <= (1+eps)(1+h)");
  const double eps = 0.5;
  bool all_ok = true;
  Table table({"h", "seed", "jobs", "exact OPT", "relaxed (DP)", "final cost",
               "cost/OPT", "violation", "bound"});
  for (const int height : {1, 2}) {
    std::vector<double> cm;
    for (int j = height; j >= 0; --j) cm.push_back(2.0 * j);
    const Hierarchy h = Hierarchy::uniform(height, 2, cm);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const Tree t = exp::make_tree_workload(16, h, seed * 977, 0.8);
      const ExactTreeResult exact = solve_exact_hgpt(t, h);
      if (!exact.feasible) continue;
      TreeSolverOptions opt;
      opt.epsilon = eps;
      const TreeHgpSolution sol = solve_hgpt(t, h, opt);
      const double bound = (1 + eps) * (1 + height);
      table.row()
          .add(height)
          .add(static_cast<std::int64_t>(seed))
          .add(static_cast<std::int64_t>(t.leaf_count()))
          .add(exact.cost)
          .add(sol.relaxed_cost)
          .add(sol.cost)
          .add(exact.cost > 0 ? sol.cost / exact.cost : 1.0)
          .add(sol.max_violation())
          .add(bound);
      all_ok &= sol.cost <= exact.cost + 1e-6;
      all_ok &= sol.relaxed_cost <= exact.cost + 1e-6;
      all_ok &= sol.max_violation() <= bound + 1e-9;
    }
  }
  table.print(std::cout);
  std::printf("\n");
  const bool ok = exp::check(
      "every instance: cost <= exact OPT and violation within bound", all_ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
