// E3 — Lemma 2: Eq. (1) ≡ Eq. (3).
//
// For normalized multipliers the direct LCA cost and the mirror-function
// cost agree on every placement; the table reports the maximum deviation
// per workload family over random placements plus the evaluation
// throughput of both formulations.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/mirror.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hgp {
namespace {

Placement random_placement_of(const Graph& g, const Hierarchy& h, Rng& rng) {
  Placement p;
  p.leaf_of.resize(static_cast<std::size_t>(g.vertex_count()));
  for (auto& leaf : p.leaf_of) {
    leaf = narrow<LeafId>(
        rng.next_below(static_cast<std::uint64_t>(h.leaf_count())));
  }
  return p;
}

int run() {
  exp::print_header("E3", "cost identity Eq.(1) == Eq.(3) (Lemma 2)",
                    "direct LCA cost equals the mirror/cut telescoping cost "
                    "for every placement when cm(h) = 0");
  const Hierarchy h = exp::hierarchy_socket_core_ht();
  bool all_ok = true;
  Table table({"family", "n", "m", "placements", "max |Eq1-Eq3|",
               "max |Eq1-literal|", "Eq1 us/eval", "Eq3 us/eval"});
  Rng rng(3);
  for (const auto family : exp::all_families()) {
    const Graph g = exp::make_workload(family, 80, h, 5);
    double max_dev = 0, max_dev_lit = 0;
    const int rounds = 40;
    double t1 = 0, t3 = 0;
    for (int i = 0; i < rounds; ++i) {
      const Placement p = random_placement_of(g, h, rng);
      Timer a;
      const double direct = placement_cost(g, h, p);
      t1 += a.seconds();
      Timer b;
      const double mirror = placement_cost_mirror(g, h, p);
      t3 += b.seconds();
      max_dev = std::max(max_dev, std::abs(direct - mirror));
      if (i < 5) {  // the literal set-by-set evaluation is slow
        const MirrorFunction m = build_mirror(g, h, p);
        max_dev_lit =
            std::max(max_dev_lit, std::abs(direct - mirror_cost_literal(g, h, m)));
      }
    }
    table.row()
        .add(exp::family_name(family))
        .add(g.vertex_count())
        .add(g.edge_count())
        .add(rounds)
        .add(max_dev, 12)
        .add(max_dev_lit, 12)
        .add(1e6 * t1 / rounds, 2)
        .add(1e6 * t3 / rounds, 2);
    all_ok &= max_dev < 1e-9 && max_dev_lit < 1e-9;
  }
  table.print(std::cout);
  std::printf("\n");
  const bool ok = exp::check("Eq.(1) == Eq.(3) to 1e-9 on all families", all_ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
