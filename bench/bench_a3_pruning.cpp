// A3 (ablation) — Pareto dominance pruning of DP states.
//
// The pruning is provably lossless (same presence class, componentwise
// ≥ demand, ≥ cost ⇒ the entry can never beat its dominator in any parent
// combination).  This ablation measures the cost identity and the
// state/time reduction that makes taller hierarchies practical.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/tree_dp.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hgp {
namespace {

Hierarchy hier_of(int height) {
  std::vector<double> cm;
  for (int j = height; j >= 0; --j) cm.push_back(2.0 * j);
  return Hierarchy::uniform(height, 2, cm);
}

int run() {
  exp::print_header("A3", "ablation: DP dominance pruning",
                    "identical optima; states and time shrink by orders of "
                    "magnitude on taller hierarchies");
  Table table({"h", "jobs", "states (off)", "states (on)", "ms (off)",
               "ms (on)", "speedup", "same cost"});
  bool all_equal = true;
  for (const int height : {1, 2, 3}) {
    const Hierarchy h = hier_of(height);
    const Tree t = exp::make_tree_workload(60, h, 7, 0.6);
    TreeDpOptions on;
    on.units_override = exp::auto_units(t, h, 2.0);
    TreeDpOptions off = on;
    off.prune_dominated = false;
    Timer ta;
    const TreeDpResult ron = solve_rhgpt(t, h, on);
    const double ms_on = ta.millis();
    Timer tb;
    const TreeDpResult roff = solve_rhgpt(t, h, off);
    const double ms_off = tb.millis();
    const bool equal = std::abs(ron.cost - roff.cost) < 1e-9;
    table.row()
        .add(height)
        .add(static_cast<std::int64_t>(t.leaf_count()))
        .add(static_cast<std::int64_t>(roff.stats.feasible_states))
        .add(static_cast<std::int64_t>(ron.stats.feasible_states))
        .add(ms_off, 1)
        .add(ms_on, 1)
        .add(ms_on > 0 ? ms_off / ms_on : 0.0, 1)
        .add(equal ? "yes" : "NO");
    all_equal &= equal;
  }
  table.print(std::cout);
  std::printf("\n");
  const bool ok = exp::check("pruned and unpruned optima identical", all_equal);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
