// A2 (extension) — hybrid: approximation algorithm + local refinement.
//
// The heuristic literature the paper cites ([20], [29]) refines an initial
// partition; the natural extension of the paper's pipeline does the same:
// run the DP solver, then hierarchy-aware local search on the result.
// The hybrid must never be worse than the raw solver and typically closes
// part of the embedding loss.
#include <cstdio>
#include <iostream>

#include "baseline/local_search.hpp"
#include "runtime/solver.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

int run() {
  exp::print_header("A2", "extension: DP solver + local-search refinement",
                    "refinement never worsens the solver's placement and "
                    "recovers part of the O(log n) embedding loss");
  const Hierarchy h = exp::hierarchy_socket_core_ht();
  Table table({"family", "solver", "solver+ls", "improvement %", "moves",
               "swaps"});
  bool never_worse = true;
  double total_gain = 0;
  int rows = 0;
  for (const auto family : exp::all_families()) {
    const Graph g = exp::make_workload(family, 80, h, 19);
    SolverOptions opt;
    opt.num_trees = 3;
    opt.units_override = 8;
    opt.seed = 7;
    const HgpResult res = solve_hgp(g, h, opt);
    Placement refined = res.placement;
    LocalSearchOptions ls;
    ls.capacity_factor = load_report(g, h, res.placement).leaf_violation();
    ls.capacity_factor = std::max(1.0, ls.capacity_factor);
    const LocalSearchStats stats = local_search(g, h, refined, ls);
    const double after = stats.final_cost;
    const double gain =
        res.cost > 0 ? 100.0 * (res.cost - after) / res.cost : 0.0;
    table.row()
        .add(exp::family_name(family))
        .add(res.cost)
        .add(after)
        .add(gain, 1)
        .add(stats.moves)
        .add(stats.swaps);
    never_worse &= after <= res.cost + 1e-9;
    total_gain += gain;
    ++rows;
  }
  table.print(std::cout);
  std::printf("\n   mean improvement: %.1f%%\n\n", total_gain / rows);
  const bool ok = exp::check("refinement never worsens the solver", never_worse);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
