// E8 — the k-BGP / Minimum Bisection special case (§1).
//
// With h = 1 and cm = {1, 0} the HGP objective is exactly the k-way cut
// weight.  Part A: the full pipeline against the exhaustive minimum
// bisection on small graphs.  Part B: k-BGP comparison of all algorithms
// on planted bipartitions, where the true cut is known by construction.
#include <cstdio>
#include <iostream>

#include "baseline/exact.hpp"
#include "exp/algorithms.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "hierarchy/cost.hpp"
#include "graph/generators.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

Weight exact_bisection(const Graph& g) {
  const Vertex n = g.vertex_count();
  Weight best = std::numeric_limits<Weight>::infinity();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    if (__builtin_popcountll(mask) != n / 2) continue;
    std::vector<char> side(static_cast<std::size_t>(n), 0);
    for (Vertex v = 0; v < n; ++v) side[v] = (mask >> v) & 1;
    best = std::min(best, g.cut_weight(side));
  }
  return best;
}

int run() {
  exp::print_header("E8", "k-BGP / Minimum Bisection special case (§1)",
                    "HGP with h=1, cm={1,0} solves balanced partitioning "
                    "within the bicriteria bounds");
  bool all_ok = true;

  std::printf("-- Part A: minimum bisection, n = 14 (exhaustive reference)\n");
  Table ta({"seed", "exact bisection", "solver cut", "ratio", "violation"});
  const Hierarchy h2 = Hierarchy::kbgp(2);
  const auto solver = exp::solver_algorithm(0.5, 4);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 53);
    Graph g = gen::planted_partition(14, 2, 0.75, 0.12, rng,
                                     gen::WeightRange{1.0, 4.0},
                                     gen::WeightRange{1.0, 2.0});
    gen::set_kbgp_demands(g, 7);
    const Weight opt_cut = exact_bisection(g);
    const auto res = solver.run(g, h2, seed);
    const double ratio = opt_cut > 0 ? res.cost / opt_cut : 1.0;
    ta.row()
        .add(static_cast<std::int64_t>(seed))
        .add(opt_cut)
        .add(res.cost)
        .add(ratio)
        .add(res.max_violation);
    all_ok &= ratio <= 2.0 + 1e-9;           // empirical envelope
    all_ok &= res.max_violation <= 4.0 + 1e-9;  // 2(1+h), unit-floor bound
  }
  ta.print(std::cout);

  std::printf("\n-- Part B: k-BGP with k = 8 on planted 8-partitions\n");
  Table tb({"algorithm", "mean cut", "vs planted cut", "violation"});
  const Hierarchy h8 = Hierarchy::kbgp(8);
  const Vertex n = 64;
  Rng rng(9);
  Graph g = gen::planted_partition(n, 8, 0.8, 0.04, rng,
                                   gen::WeightRange{2.0, 4.0},
                                   gen::WeightRange{1.0, 1.0});
  gen::set_kbgp_demands(g, n / 8);
  // The planted partition's own cut weight (8 blocks of 8 vertices).
  Placement planted;
  planted.leaf_of.resize(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    planted.leaf_of[static_cast<std::size_t>(v)] = v * 8 / n;
  }
  const double planted_cut = placement_cost(g, h8, planted);
  double solver_cut = -1;
  for (const auto& a : exp::comparison_algorithms(0.5, 3)) {
    const auto res = a.run(g, h8, 3);
    tb.row()
        .add(a.name)
        .add(res.cost)
        .add(planted_cut > 0 ? res.cost / planted_cut : 1.0)
        .add(res.max_violation, 2);
    if (a.name == "hgp-dp") solver_cut = res.cost;
  }
  tb.print(std::cout);
  all_ok &= solver_cut <= 2.5 * planted_cut;

  std::printf("\n");
  const bool ok = exp::check(
      "bisection within 2x exact; k-BGP within 2.5x the planted cut", all_ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
