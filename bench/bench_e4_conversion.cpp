// E4 — Theorem 5: RHGPT → HGPT conversion.
//
// Sweeps tree sizes and hierarchy heights; for each instance verifies that
// the conversion never increases the cost and that the measured level-j
// violation stays within (1+ε)(1+j).  The table reports the *observed*
// worst violation per level against the theorem's bound — the paper's
// bound is loose in practice, which is part of the story.
#include <cstdio>
#include <iostream>

#include "core/tree_solver.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

int run() {
  exp::print_header(
      "E4", "RHGPT->HGPT conversion (Theorem 5)",
      "conversion preserves cost; level-j violation <= 2(1+j) "
      "(the unit-floor rounding bound; (1+eps)(1+j) for U >= n/eps)");
  bool all_ok = true;
  Table table({"h", "n(tree)", "jobs", "relaxed", "final", "cost ok",
               "worst level viol", "at level", "bound there"});
  for (const int height : {1, 2, 3}) {
    std::vector<double> cm;
    for (int j = height; j >= 0; --j) cm.push_back(2.0 * j);
    const Hierarchy h = Hierarchy::uniform(height, 2, cm);
    for (const Vertex n : {40, 90, 180}) {
      const Tree t = exp::make_tree_workload(
          n, h, static_cast<std::uint64_t>(height) * 1000 + n, 0.6);
      TreeSolverOptions opt;
      opt.units_override = exp::auto_units(t, h, 2.0);
      const TreeHgpSolution sol = solve_hgpt(t, h, opt);
      int worst_level = 0;
      double worst_excess = -1;
      bool viol_ok = true;
      for (int j = 0; j <= height; ++j) {
        const double bound = 2.0 * (1 + j);
        const double v = sol.violation[static_cast<std::size_t>(j)];
        viol_ok &= v <= bound + 1e-9;
        if (v / bound > worst_excess) {
          worst_excess = v / bound;
          worst_level = j;
        }
      }
      const bool cost_ok = sol.cost <= sol.relaxed_cost + 1e-9;
      table.row()
          .add(height)
          .add(n)
          .add(static_cast<std::int64_t>(t.leaf_count()))
          .add(sol.relaxed_cost)
          .add(sol.cost)
          .add(cost_ok ? "yes" : "NO")
          .add(sol.violation[static_cast<std::size_t>(worst_level)])
          .add(worst_level)
          .add(2.0 * (1 + worst_level));
      all_ok &= cost_ok && viol_ok;
    }
  }
  table.print(std::cout);
  std::printf("\n");
  const bool ok = exp::check(
      "cost never increases; violations within 2(1+j) at every level",
      all_ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
