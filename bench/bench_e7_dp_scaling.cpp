// E7 — §3's running-time analysis (and figure F3).
//
// The paper bounds the DP by O(n · D^(3h+2)): polynomial in the tree size
// and the demand resolution (D grows with 1/ε), exponential in the
// hierarchy height.  Three sweeps make those dependencies visible:
//   (a) n with everything else fixed — near-linear growth,
//   (b) demand units U (our 1/ε dial) — polynomial growth, exponent
//       increasing with h,
//   (c) height h — the super-polynomial wall that motivates "h constant".
//   (d) hot-path configurations at the largest size — dominance pruning
//       A/B and the parallel subtree phase — quantifying the optimization
//       layer on top of the asymptotics.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/tree_dp.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "parallel/thread_pool.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hgp {
namespace {

Hierarchy hier_of(int height) {
  std::vector<double> cm;
  for (int j = height; j >= 0; --j) cm.push_back(2.0 * j);
  return Hierarchy::uniform(height, 2, cm);
}

int run() {
  exp::print_header("E7", "DP running time (analysis in §3, figure F3)",
                    "time polynomial in n and demand resolution, "
                    "exponential in hierarchy height h");
  CsvWriter csv({"sweep", "x", "ms", "signatures", "merges"});
  // Totals across all sweep points, persisted by scripts/run_benches.sh
  // (BENCH_JSON line below) as this bench's perf-trajectory record.
  double solve_ms_total = 0;
  std::uint64_t sig_total = 0, feasible_total = 0, merge_total = 0;
  Vertex n_max = 0;
  auto tally = [&](Vertex n, double ms, const TreeDpStats& stats) {
    n_max = std::max(n_max, n);
    solve_ms_total += ms;
    sig_total += stats.signature_count;
    feasible_total += stats.feasible_states;
    merge_total += stats.merge_operations;
  };

  std::printf("-- (a) n sweep (h = 2, ~2 units per job)\n");
  Table ta({"n(tree)", "jobs", "ms", "signatures", "feasible states",
            "merge ops"});
  const Hierarchy h2 = hier_of(2);
  double last_ms = 0, last_n = 0;
  double worst_n_exponent = 0;
  for (const Vertex n : {40, 80, 160, 320}) {
    const Tree t = exp::make_tree_workload(n, h2, n, 0.6);
    TreeDpOptions opt;
    opt.units_override = exp::auto_units(t, h2, 2.0);
    Timer timer;
    const TreeDpResult r = solve_rhgpt(t, h2, opt);
    const double ms = timer.millis();
    ta.row()
        .add(n)
        .add(static_cast<std::int64_t>(t.leaf_count()))
        .add(ms, 1)
        .add(static_cast<std::int64_t>(r.stats.signature_count))
        .add(static_cast<std::int64_t>(r.stats.feasible_states))
        .add(static_cast<std::int64_t>(r.stats.merge_operations));
    csv.row().add(std::string("n")).add(static_cast<std::int64_t>(n)).add(ms);
    tally(n, ms, r.stats);
    // Sub-millisecond points are timing noise, not growth signal; the
    // arena/pruning layer pushed the small sizes under that floor.
    if (last_ms > 0.5 && ms > 0.5) {
      worst_n_exponent = std::max(
          worst_n_exponent, std::log(ms / last_ms) / std::log(n / last_n));
    }
    last_ms = ms;
    last_n = n;
  }
  ta.print(std::cout);

  std::printf("\n-- (b) demand-unit sweep (h = 2, n = 160)\n");
  Table tb({"units U", "~epsilon", "ms", "signatures", "merge ops"});
  const Tree tsweep = exp::make_tree_workload(160, h2, 77, 0.6);
  const DemandUnits base_u = exp::auto_units(tsweep, h2, 1.0);
  for (const DemandUnits u :
       {base_u, 2 * base_u, 3 * base_u, 4 * base_u, 6 * base_u}) {
    TreeDpOptions opt;
    opt.units_override = u;
    Timer timer;
    const TreeDpResult r = solve_rhgpt(tsweep, h2, opt);
    const double ms = timer.millis();
    tb.row()
        .add(static_cast<std::int64_t>(u))
        .add(static_cast<double>(tsweep.leaf_count()) / static_cast<double>(u),
             2)
        .add(ms, 1)
        .add(static_cast<std::int64_t>(r.stats.signature_count))
        .add(static_cast<std::int64_t>(r.stats.merge_operations));
    csv.row().add(std::string("U")).add(static_cast<std::int64_t>(u)).add(ms);
    tally(160, ms, r.stats);
  }
  tb.print(std::cout);

  std::printf("\n-- (c) height sweep (n = 120, ~1.5 units per job)\n");
  Table tc({"h", "leaves(H)", "ms", "signatures", "merge ops"});
  double prev_ms = 0;
  double growth_factor = 0;
  for (const int height : {1, 2, 3}) {
    const Hierarchy hh = hier_of(height);
    const Tree theight = exp::make_tree_workload(120, hh, 99, 0.6);
    TreeDpOptions opt;
    opt.units_override = exp::auto_units(theight, hh, 1.5);
    Timer timer;
    const TreeDpResult r = solve_rhgpt(theight, hh, opt);
    const double ms = timer.millis();
    tc.row()
        .add(height)
        .add(static_cast<std::int64_t>(hh.leaf_count()))
        .add(ms, 1)
        .add(static_cast<std::int64_t>(r.stats.signature_count))
        .add(static_cast<std::int64_t>(r.stats.merge_operations));
    csv.row().add(std::string("h")).add(static_cast<std::int64_t>(height)).add(ms);
    tally(120, ms, r.stats);
    if (prev_ms > 0.5) growth_factor = std::max(growth_factor, ms / prev_ms);
    prev_ms = ms;
  }
  tc.print(std::cout);

  std::printf("\n-- (d) hot-path configurations (h = 2, largest n)\n");
  Table td({"config", "ms", "merge ops", "merges/ms", "subtree tasks"});
  const Tree tbig = exp::make_tree_workload(n_max, h2, n_max, 0.6);
  TreeDpOptions dbase;
  dbase.units_override = exp::auto_units(tbig, h2, 2.0);
  ThreadPool pool(ThreadPool::default_thread_count());
  double seq_ms = 0, par_ms = 0;
  auto drow = [&](const char* name, const TreeDpOptions& opt) {
    Timer timer;
    const TreeDpResult r = solve_rhgpt(tbig, h2, opt);
    const double ms = timer.millis();
    td.row()
        .add(std::string(name))
        .add(ms, 1)
        .add(static_cast<std::int64_t>(r.stats.merge_operations))
        .add(static_cast<double>(r.stats.merge_operations) / ms, 0)
        .add(static_cast<std::int64_t>(r.stats.subtree_tasks));
    csv.row().add(std::string(name)).add(std::int64_t{0}).add(ms);
    return ms;
  };
  seq_ms = drow("sequential", dbase);
  TreeDpOptions doff = dbase;
  doff.prune_dominated = false;
  drow("pruning off", doff);
  TreeDpOptions dpar = dbase;
  dpar.pool = &pool;
  par_ms = drow("parallel subtrees", dpar);
  td.print(std::cout);
  exp::maybe_write_csv(csv, "bench_e7_dp_scaling");

  std::printf("\n");
  bool ok = exp::check(
      "n-sweep growth polynomial, well below the paper's D^(3h+2) "
      "(empirical exponent <= 3.2)",
      worst_n_exponent <= 3.2);
  ok &= exp::check("height sweep shows super-linear state growth",
                   growth_factor > 1.0);
  std::printf(
      "BENCH_JSON: {\"n\": %d, \"solve_ms\": %.1f, \"signatures\": %llu, "
      "\"feasible_states\": %llu, \"merge_operations\": %llu, "
      "\"merges_per_ms\": %.0f, \"parallel_ms\": %.1f, "
      "\"sequential_ms\": %.1f}\n",
      n_max, solve_ms_total, static_cast<unsigned long long>(sig_total),
      static_cast<unsigned long long>(feasible_total),
      static_cast<unsigned long long>(merge_total),
      static_cast<double>(merge_total) / std::max(solve_ms_total, 1e-9),
      par_ms, seq_ms);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
