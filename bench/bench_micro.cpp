// Microbenchmarks (google-benchmark) for the library's hot kernels:
// cost evaluation, tree separators, decomposition building, and the
// signature DP at several resolutions.
#include <benchmark/benchmark.h>

#include "core/tree_dp.hpp"
#include "decomp/builder.hpp"
#include "exp/workloads.hpp"
#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"

namespace hgp {
namespace {

Graph bench_graph(Vertex n) {
  const Hierarchy h = exp::hierarchy_socket_core_ht();
  return exp::make_workload(exp::Family::PlantedPartition, n, h, 7);
}

Placement bench_placement(const Graph& g, const Hierarchy& h) {
  Rng rng(5);
  Placement p;
  p.leaf_of.resize(static_cast<std::size_t>(g.vertex_count()));
  for (auto& leaf : p.leaf_of) {
    leaf = narrow<LeafId>(
        rng.next_below(static_cast<std::uint64_t>(h.leaf_count())));
  }
  return p;
}

void BM_PlacementCostDirect(benchmark::State& state) {
  const Hierarchy h = exp::hierarchy_socket_core_ht();
  const Graph g = bench_graph(narrow<Vertex>(state.range(0)));
  const Placement p = bench_placement(g, h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement_cost(g, h, p));
  }
  state.SetItemsProcessed(state.iterations() * g.edge_count());
}
BENCHMARK(BM_PlacementCostDirect)->Arg(64)->Arg(256)->Arg(1024);

void BM_PlacementCostMirror(benchmark::State& state) {
  const Hierarchy h = exp::hierarchy_socket_core_ht();
  const Graph g = bench_graph(narrow<Vertex>(state.range(0)));
  const Placement p = bench_placement(g, h);
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement_cost_mirror(g, h, p));
  }
}
BENCHMARK(BM_PlacementCostMirror)->Arg(64)->Arg(256)->Arg(1024);

void BM_LeafSeparator(benchmark::State& state) {
  Rng rng(3);
  const Graph g = gen::random_tree(narrow<Vertex>(state.range(0)), rng,
                                   gen::WeightRange{1.0, 9.0});
  const Tree t = Tree::from_graph(g, 0);
  std::vector<char> in_set(static_cast<std::size_t>(t.node_count()), 0);
  for (Vertex leaf : t.leaves()) {
    in_set[static_cast<std::size_t>(leaf)] = rng.next_bool(0.5) ? 1 : 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(t.leaf_separator(in_set).weight);
  }
}
BENCHMARK(BM_LeafSeparator)->Arg(256)->Arg(2048);

void BM_DecompTreeBuild(benchmark::State& state) {
  const Graph g = bench_graph(narrow<Vertex>(state.range(0)));
  const FmCutter cutter;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    benchmark::DoNotOptimize(build_decomp_tree(g, rng, cutter));
  }
}
BENCHMARK(BM_DecompTreeBuild)->Arg(64)->Arg(256);

void BM_TreeDp(benchmark::State& state) {
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  const Tree t = exp::make_tree_workload(narrow<Vertex>(state.range(0)), h,
                                         11, 0.6);
  TreeDpOptions opt;
  opt.units_override =
      exp::auto_units(t, h, static_cast<double>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_rhgpt(t, h, opt));
  }
}
BENCHMARK(BM_TreeDp)
    ->Args({100, 2})
    ->Args({100, 4})
    ->Args({200, 2})
    ->Args({200, 4});

}  // namespace
}  // namespace hgp

BENCHMARK_MAIN();
