// E5 — Theorem 1 end to end (plus figure F4).
//
// Part A: on instances small enough for the exact oracle, the measured
// approximation ratio of the full pipeline (embed → DP → convert → map
// back).  Theorem 1 allows O(log n); with capacity violation available the
// solver typically lands at or below 1.
//
// Part B: ratio versus n on clustered instances, normalized by the best
// solution any implemented algorithm finds, reported against a c·log2(n)
// envelope — the figure-shaped check that the loss grows no faster than
// the theorem predicts.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "baseline/exact.hpp"
#include "exp/algorithms.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

int run() {
  exp::print_header("E5", "end-to-end approximation ratio (Theorem 1, F4)",
                    "cost <= O(log n) * OPT with violation <= (1+eps)(1+h)");
  const Hierarchy h = exp::hierarchy_two_level(2, 2);
  bool all_ok = true;

  // Part A: exact ratios.
  Table small({"seed", "n", "exact OPT", "solver", "ratio", "violation"});
  const auto solver = exp::solver_algorithm(0.5, 4);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed * 131);
    Graph g = gen::erdos_renyi(9, 0.5, rng, gen::WeightRange{1.0, 9.0});
    gen::set_random_demands(g, rng, 0.15, 0.4);
    const ExactResult exact = solve_exact_hgp(g, h);
    if (!exact.feasible || exact.cost <= 0) continue;
    const auto res = solver.run(g, h, seed);
    const double ratio = res.cost / exact.cost;
    small.row()
        .add(static_cast<std::int64_t>(seed))
        .add(g.vertex_count())
        .add(exact.cost)
        .add(res.cost)
        .add(ratio)
        .add(res.max_violation);
    all_ok &= ratio <= 2.0 + 1e-9;  // empirical envelope on these seeds
    all_ok &= res.max_violation <= 2.0 * (1 + h.height()) + 1e-9;
  }
  std::printf("-- Part A: vs exact optimum (n = 9)\n");
  small.print(std::cout);

  // Part B: growth versus n against a log-n envelope.
  std::printf("\n-- Part B: ratio vs n (normalized by best algorithm found)\n");
  Table growth({"n", "solver cost", "best-known", "ratio", "log2(n)",
                "ratio/log2(n)"});
  CsvWriter csv({"n", "ratio", "log2n"});
  const auto algos = exp::comparison_algorithms(0.5, 3);
  double worst_normalized = 0;
  for (const Vertex n : {24, 48, 96, 192}) {
    const Graph g =
        exp::make_workload(exp::Family::PlantedPartition, n, h, 17);
    double best = -1, solver_cost = -1;
    for (const auto& a : algos) {
      const auto res = a.run(g, h, 29);
      if (best < 0 || res.cost < best) best = res.cost;
      if (a.name == "hgp-dp") solver_cost = res.cost;
    }
    const double ratio = best > 0 ? solver_cost / best : 1.0;
    const double logn = std::log2(static_cast<double>(n));
    growth.row()
        .add(n)
        .add(solver_cost)
        .add(best)
        .add(ratio)
        .add(logn)
        .add(ratio / logn);
    csv.row().add(static_cast<std::int64_t>(n)).add(ratio).add(logn);
    worst_normalized = std::max(worst_normalized, ratio / logn);
  }
  growth.print(std::cout);
  exp::maybe_write_csv(csv, "bench_e5_end_to_end_ratio");
  all_ok &= worst_normalized <= 1.0;  // far inside the O(log n) envelope

  std::printf("\n");
  const bool ok = exp::check(
      "ratios within the bicriteria envelope (<=2 vs exact, <=log2 n vs "
      "best-known)", all_ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
