// NET — wire-protocol overhead: what does the framed, CRC-checked channel
// cost on top of raw memcpy?
//
// The sharded solver ships one forest snapshot out and per-tree results
// back per request (docs/FORMATS.md "Wire protocol"), so the frame codec
// sits on the request path.  This bench reports encode / decode / verify
// throughput for a spread of payload sizes plus the end-to-end socketpair
// round-trip rate, so a regression in the CRC path or an accidental extra
// copy shows up as a number, not a hunch.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <thread>
#include <vector>

#include "net/channel.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hgp {
namespace {

double mib_per_s(std::size_t bytes, double ms) {
  return (static_cast<double>(bytes) / (1024.0 * 1024.0)) / (ms / 1000.0);
}

int run() {
  std::printf("NET — frame codec + channel throughput\n\n");
  Table table({"payload", "encode MiB/s", "decode MiB/s", "roundtrip msg/s"});

  for (const std::size_t size :
       {std::size_t{64}, std::size_t{4096}, std::size_t{65536},
        std::size_t{1u << 20}}) {
    std::vector<std::byte> payload(size);
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<std::byte>(i * 1315423911u);
    }

    // Scale iteration counts so each cell measures a few hundred ms.
    const int iters = static_cast<int>(std::max<std::size_t>(
        8, (std::size_t{64} << 20) / (size + 1)));

    Timer enc_timer;
    std::vector<std::byte> wire;
    for (int i = 0; i < iters; ++i) {
      wire = net::encode_frame(net::kMsgHeartbeat, payload);
    }
    const double enc_ms = enc_timer.millis();

    Timer dec_timer;
    for (int i = 0; i < iters; ++i) {
      net::Frame f = net::decode_frame(wire);
      if (f.payload.size() != size) std::abort();
    }
    const double dec_ms = dec_timer.millis();

    // End-to-end: one sender thread, one receiver, a socketpair between
    // them — the exact transport the coordinator and shards speak.
    const int msgs = std::max(64, iters / 4);
    auto [a, b] = net::socket_pair();
    net::FrameChannel tx(std::move(a));
    net::FrameChannel rx(std::move(b));
    Timer rt_timer;
    std::thread sender([&] {  // hgp-lint: allow(naked-thread)
      for (int i = 0; i < msgs; ++i) {
        tx.send(net::kMsgHeartbeat, payload, Deadline::never());
      }
    });
    for (int i = 0; i < msgs; ++i) {
      auto f = rx.recv(Deadline::never());
      if (!f.has_value() || f->payload.size() != size) std::abort();
    }
    sender.join();
    const double rt_ms = rt_timer.millis();

    const std::size_t total = size * static_cast<std::size_t>(iters);
    table.row()
        .add(std::to_string(size) + " B")
        .add(mib_per_s(total, enc_ms), 1)
        .add(mib_per_s(total, dec_ms), 1)
        .add(static_cast<double>(msgs) / (rt_ms / 1000.0), 0);
  }
  table.print(std::cout);
  return 0;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
