// E10 — structural theorems on the DP output.
//
// Theorem 3 (nice solutions): the DP's solution has zero (v,j)-bad sets.
// Definition 4: the collections partition the leaves at every level,
// refine laminarly, and respect the scaled capacities with NO violation
// (the relaxation is capacity-exact; violation enters only at conversion).
// Lemma 4/5 consequences are exercised through the validators.
#include <cstdio>
#include <iostream>

#include "core/rhgpt.hpp"
#include "core/tree_dp.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

int run() {
  exp::print_header("E10", "nice-solution structure (Theorem 3, Defs 4-7)",
                    "the DP output is a nice solution: BS(s) = 0, laminar "
                    "partitions, capacity-exact collections");
  bool all_ok = true;
  Table table({"h", "n(tree)", "seed", "sets/level", "bad sets BS(s)",
               "laminar+capacity", "dp == definition cost"});
  for (const int height : {1, 2, 3}) {
    std::vector<double> cm;
    for (int j = height; j >= 0; --j) cm.push_back(2.0 * j);
    const Hierarchy h = Hierarchy::uniform(height, 2, cm);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      const Tree t = exp::make_tree_workload(
          40, h, seed * 271 + static_cast<std::uint64_t>(height), 0.6);
      TreeDpOptions opt;
      opt.units_override = exp::auto_units(t, h, 2.0);
      const TreeDpResult r = solve_rhgpt(t, h, opt);
      const std::int64_t bad = count_bad_sets(t, r.solution);
      bool valid = true;
      try {
        validate_rhgpt(t, h, r.scaled, r.solution, 1.0);
      } catch (const CheckError&) {
        valid = false;
      }
      const double definition = rhgpt_cost(t, h, r.solution);
      const bool cost_match = std::abs(definition - r.cost) < 1e-9;
      std::string sets;
      for (int j = 1; j <= height; ++j) {
        if (j > 1) sets += "/";
        sets += std::to_string(
            r.solution.sets[static_cast<std::size_t>(j)].size());
      }
      table.row()
          .add(height)
          .add(static_cast<std::int64_t>(t.leaf_count()))
          .add(static_cast<std::int64_t>(seed))
          .add(sets)
          .add(bad)
          .add(valid ? "yes" : "NO")
          .add(cost_match ? "yes" : "NO");
      all_ok &= bad == 0 && valid && cost_match;
    }
  }
  table.print(std::cout);
  std::printf("\n");
  const bool ok = exp::check(
      "BS(s)=0, Definition-4 validation and exact cost accounting on every "
      "instance", all_ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
