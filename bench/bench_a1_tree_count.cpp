// A1 (ablation) — size of the decomposition-tree family (Theorems 6/7).
//
// The paper takes the best solution over a distribution of trees; this
// ablation measures how quickly the min over sampled trees converges:
// cost is non-increasing in the number of trees (same seed prefix) with
// most of the benefit in the first few samples.
#include <cstdio>
#include <iostream>

#include "runtime/solver.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

int run() {
  exp::print_header("A1", "ablation: decomposition-tree family size",
                    "min over sampled trees is non-increasing and "
                    "converges after a few samples (Theorem 7's arg-min)");
  const Hierarchy h = exp::hierarchy_two_level(2, 4);
  Table table({"family", "trees=1", "trees=2", "trees=4", "trees=8",
               "monotone"});
  bool all_monotone = true;
  for (const auto family :
       {exp::Family::PlantedPartition, exp::Family::StreamDag,
        exp::Family::ScaleFree}) {
    const Graph g = exp::make_workload(family, 72, h, 31);
    table.row().add(exp::family_name(family));
    double prev = -1;
    bool monotone = true;
    for (const int trees : {1, 2, 4, 8}) {
      SolverOptions opt;
      opt.num_trees = trees;
      opt.units_override = 8;
      opt.seed = 5;  // same seed ⇒ tree i is identical across runs
      const HgpResult res = solve_hgp(g, h, opt);
      table.add(res.cost);
      if (prev >= 0 && res.cost > prev + 1e-9) monotone = false;
      prev = res.cost;
    }
    table.add(monotone ? "yes" : "NO");
    all_monotone &= monotone;
  }
  table.print(std::cout);
  std::printf("\n");
  const bool ok =
      exp::check("cost non-increasing in the tree-family size", all_monotone);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
