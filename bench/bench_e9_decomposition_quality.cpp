// E9 — decomposition-tree quality (Proposition 1, Theorem 6/7 empirics).
//
// Measures the cut stretch w_T(CUT_T(P)) / w(δ_G(m(P))) of sampled leaf
// subsets for every cutter × workload family, and the effect of tree
// quality on the final solution cost.  Proposition 1 predicts min ratio
// ≥ 1; better cutters should show smaller mean stretch AND cheaper final
// placements — the ablation behind the solver's default cutter choice.
#include <cstdio>

#include <functional>
#include <iostream>

#include "runtime/solver.hpp"
#include "decomp/builder.hpp"
#include "decomp/frt.hpp"
#include "decomp/quality.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

int run() {
  exp::print_header("E9", "decomposition-tree quality (Prop. 1, Thm. 6/7)",
                    "tree cuts dominate graph cuts (ratio >= 1); better "
                    "cutters -> smaller stretch -> cheaper final solutions");
  const Hierarchy h = exp::hierarchy_two_level(2, 4);
  const SpectralCutter spectral;
  const FmCutter fm;
  const RandomCutter random;
  const MinCutCutter mincut;
  // Cut-based recursive builders plus the FRT metric-embedding family.
  struct Builderx {
    std::string name;
    const Cutter* cutter;  // nullptr = FRT
  };
  const std::vector<Builderx> builders{{"spectral", &spectral},
                                       {"spectral+fm", &fm},
                                       {"min-cut", &mincut},
                                       {"random", &random},
                                       {"frt-metric", nullptr}};

  bool prop1_ok = true;
  bool ablation_ok = true;
  Table table({"family", "tree family", "mean stretch", "max stretch",
               "min stretch", "final cost"});
  for (const auto family :
       {exp::Family::PlantedPartition, exp::Family::StreamDag,
        exp::Family::Grid, exp::Family::Random}) {
    const Graph g = exp::make_workload(family, 72, h, 13);
    double fm_cost = -1, random_cost = -1;
    for (const auto& bx : builders) {
      Rng rng(21);
      const DecompTree dt = bx.cutter != nullptr
                                ? build_decomp_tree(g, rng, *bx.cutter)
                                : build_frt_tree(g, rng);
      const CutQuality q = measure_cut_quality(g, dt, 120, rng);
      double final_cost;
      if (bx.cutter != nullptr) {
        SolverOptions opt;
        opt.num_trees = 2;
        opt.units_override = 8;
        opt.cutter = bx.cutter;
        opt.seed = 5;
        final_cost = solve_hgp(g, h, opt).cost;
      } else {
        // FRT trees go through the tree solver directly (one sample).
        TreeSolverOptions topt;
        topt.units_override = 8;
        const TreeHgpSolution sol = solve_hgpt(dt.tree(), h, topt);
        Placement p;
        p.leaf_of.assign(static_cast<std::size_t>(g.vertex_count()), 0);
        for (Vertex v = 0; v < g.vertex_count(); ++v) {
          p.leaf_of[static_cast<std::size_t>(v)] =
              sol.assignment.of(dt.leaf_of_vertex(v));
        }
        final_cost = placement_cost(g, h, p);
      }
      table.row()
          .add(exp::family_name(family))
          .add(bx.name)
          .add(q.mean_ratio)
          .add(q.max_ratio)
          .add(q.min_ratio)
          .add(final_cost);
      prop1_ok &= q.min_ratio >= 1.0 - 1e-9;
      if (bx.cutter == &fm) fm_cost = final_cost;
      if (bx.cutter == &random) random_cost = final_cost;
    }
    // Structure-aware trees should not lose to structure-oblivious ones
    // (allow a little noise on the unstructured families).
    ablation_ok &= fm_cost <= random_cost * 1.15 + 1e-9;
  }
  table.print(std::cout);
  std::printf("\n");
  bool ok = exp::check("Proposition 1: stretch >= 1 on every sample", prop1_ok);
  ok &= exp::check("spectral+fm trees never lose to random trees (within 15%)",
                   ablation_ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
