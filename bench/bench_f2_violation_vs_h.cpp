// F2 — figure: capacity violation vs hierarchy height.
//
// Theorem 2's violation bound (1+ε)(1+h) grows linearly with h; the figure
// shows the measured worst violation sitting under that line, and how much
// slack there is in practice.
#include <cstdio>
#include <iostream>

#include "core/tree_solver.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

int run() {
  exp::print_header("F2", "violation vs hierarchy height (figure)",
                    "max measured violation <= 2(1+h) (unit-floor bound; "
                    "(1+eps)(1+h) when U >= n/eps) at every h");
  Table table({"h", "instances", "mean violation", "max violation",
               "bound 2(1+h)", "within"});
  CsvWriter csv({"h", "mean", "max", "bound"});
  bool all_ok = true;
  for (const int height : {1, 2, 3, 4}) {
    std::vector<double> cm;
    for (int j = height; j >= 0; --j) cm.push_back(2.0 * j);
    const Hierarchy h = Hierarchy::uniform(height, 2, cm);
    Samples viol;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const Tree t = exp::make_tree_workload(
          60, h, seed * 613 + static_cast<std::uint64_t>(height), 0.6);
      TreeSolverOptions opt;
      opt.units_override = exp::auto_units(t, h, 2.0);
      const TreeHgpSolution sol = solve_hgpt(t, h, opt);
      viol.add(sol.max_violation());
    }
    const double bound = 2.0 * (1 + height);
    const bool within = viol.max() <= bound + 1e-9;
    table.row()
        .add(height)
        .add(static_cast<std::int64_t>(viol.count()))
        .add(viol.mean())
        .add(viol.max())
        .add(bound)
        .add(within ? "yes" : "NO");
    csv.row()
        .add(static_cast<std::int64_t>(height))
        .add(viol.mean())
        .add(viol.max())
        .add(bound);
    all_ok &= within;
  }
  table.print(std::cout);
  exp::maybe_write_csv(csv, "bench_f2_violation_vs_h");
  std::printf("\n");
  const bool ok = exp::check("violation within the 2(1+h) line for all h",
                             all_ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
