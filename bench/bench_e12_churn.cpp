// E12 — incremental repartitioning under churn: placement stability vs
// cost, and the DP-work saving of the warm-started re-solve path.
//
// A stream-DAG instance is driven through seeded churn batches
// (gen::churn) by an IncrementalSolver; every committed batch is also
// re-solved from scratch on the same patched forest.  Three claims are
// measured:
//
//   1. exactness — the incremental placement and cost are bit-identical
//      to the from-scratch solve on every batch (the invariant
//      tests/test_churn_differential.cpp pins; here it gates PASS on the
//      bench-scale instance too);
//   2. work — on drift-dominant schedules touching ≤ 10% of the vertices,
//      the incremental arm performs ≥ 5x fewer DP merge relaxations than
//      from-scratch (ISSUE acceptance floor; the measured run-level ratio
//      is reported and is typically well above 10x because demand drift
//      that rounds to the same units leaves the forest content-hash
//      clean);
//   3. stability — surviving vertices mostly keep their hierarchy leaf
//      across small batches (moved fraction reported per profile).
#include <cstdio>
#include <iostream>
#include <memory>

#include "exp/report.hpp"
#include "graph/generators.hpp"
#include "runtime/incremental.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace hgp {
namespace {

struct ProfileResult {
  int batches_committed = 0;
  std::size_t touched = 0;
  std::uint64_t inc_merges = 0;
  std::uint64_t scratch_merges = 0;
  std::uint64_t nodes_built = 0;
  std::uint64_t nodes_reused = 0;
  Vertex moved = 0;
  Vertex surviving = 0;
  bool identical = true;
};

std::shared_ptr<const Graph> make_instance() {
  Rng rng(977);
  gen::StreamDagOptions sopt;
  sopt.sources = 6;
  sopt.sinks = 3;
  sopt.stages = 8;
  sopt.stage_width = 24;
  sopt.demand_lo = 0.01;
  sopt.demand_hi = 0.05;
  return std::make_shared<const Graph>(gen::stream_dag(sopt, rng));
}

ProfileResult run_profile(const Hierarchy& h, const gen::ChurnOptions& copt,
                          int batches, std::uint64_t seed) {
  ProfileResult out;
  IncrementalOptions iopt;
  iopt.num_trees = 2;
  iopt.units_override = 3;
  iopt.seed = 11;
  IncrementalSolver solver(make_instance(), h, iopt);
  for (int b = 0; b < batches; ++b) {
    const auto log = solver.begin_batch();
    Rng crng(SplitMix64(seed + static_cast<std::uint64_t>(b)).next());
    gen::churn(*log, copt, crng);
    if (log->empty()) continue;
    out.touched += log->touched().size();
    ResolveStats rs;
    const HgpResult inc = solver.resolve(*log, ResolveOptions{}, &rs);
    ForestSolveOptions fo;
    fo.epsilon = iopt.epsilon;
    fo.units_override = solver.units();
    const HgpResult scratch =
        solve_on_forest(*solver.graph(), h, solver.forest(), fo);
    out.identical &= inc.cost == scratch.cost &&
                     inc.placement.leaf_of == scratch.placement.leaf_of;
    out.inc_merges += inc.telemetry.dp_merge_operations;
    out.scratch_merges += scratch.telemetry.dp_merge_operations;
    out.nodes_built += rs.nodes_built;
    out.nodes_reused += rs.nodes_reused;
    out.moved += rs.moved_vertices;
    out.surviving += rs.surviving_vertices;
    ++out.batches_committed;
  }
  return out;
}

int run() {
  exp::print_header(
      "E12", "incremental repartitioning under churn",
      "warm-started resolves are bit-identical to from-scratch and do "
      ">= 5x fewer merges on drift schedules touching <= 10% of vertices");
  const Hierarchy h = Hierarchy::uniform(1, 24, {2.0, 0.0});
  const Vertex n = make_instance()->vertex_count();
  Timer bench_timer;

  // Drift profile: volume reweights + sub-rounding demand nudges, the
  // ISSUE's "small churn" regime (same shape the differential suite pins).
  gen::ChurnOptions drift;
  drift.ops = 2;
  drift.w_add_vertex = 0;
  drift.w_remove_vertex = 0;
  drift.w_add_edge = 0;
  drift.w_remove_edge = 0;
  drift.w_reweight_edge = 1;
  drift.w_set_demand = 6;
  drift.demand_lo = 0.01;
  drift.demand_hi = 0.05;

  // Mixed profile: the full mutation mix including structural churn.
  gen::ChurnOptions mixed;
  mixed.ops = 6;
  mixed.demand_lo = 0.01;
  mixed.demand_hi = 0.05;
  mixed.min_live = 16;

  const ProfileResult d = run_profile(h, drift, 8, 1000);
  const ProfileResult m = run_profile(h, mixed, 8, 2000);

  Table table({"profile", "batches", "touched", "inc merges", "scratch merges",
               "merge ratio", "reused/built", "moved %", "identical"});
  const auto emit = [&](const char* name, const ProfileResult& r) {
    table.row()
        .add(name)
        .add(static_cast<std::int64_t>(r.batches_committed))
        .add(static_cast<std::int64_t>(r.touched))
        .add(static_cast<std::int64_t>(r.inc_merges))
        .add(static_cast<std::int64_t>(r.scratch_merges))
        .add(static_cast<double>(r.scratch_merges) /
             static_cast<double>(r.inc_merges > 0 ? r.inc_merges : 1))
        .add(static_cast<double>(r.nodes_reused) /
             static_cast<double>(r.nodes_built > 0 ? r.nodes_built : 1))
        .add(100.0 * static_cast<double>(r.moved) /
             static_cast<double>(r.surviving > 0 ? r.surviving : 1))
        .add(r.identical ? "yes" : "NO");
  };
  emit("drift", d);
  emit("mixed", m);
  table.print(std::cout);
  std::printf("\n");

  const double drift_ratio =
      static_cast<double>(d.scratch_merges) /
      static_cast<double>(d.inc_merges > 0 ? d.inc_merges : 1);
  bool all_ok = d.identical && m.identical;
  all_ok &= d.batches_committed > 0 && m.batches_committed > 0;
  const bool small = d.touched <= static_cast<std::size_t>(n) / 10;
  all_ok &= small;
  all_ok &= d.scratch_merges > 0 && drift_ratio >= 5.0;
  const bool ok = exp::check(
      "incremental == from-scratch on every batch, and the drift run "
      "(<= 10% of vertices touched) saves >= 5x merges", all_ok);

  // scripts/run_benches.sh persists this as BENCH_e12_churn.json; the
  // merge_operations/solve_ms pair feeds the --check throughput gate.
  std::printf(
      "BENCH_JSON: {\"n\": %u, \"solve_ms\": %.1f, "
      "\"merge_operations\": %llu, \"drift_inc_merges\": %llu, "
      "\"drift_scratch_merges\": %llu, \"drift_merge_ratio\": %.2f, "
      "\"drift_touched\": %zu, \"mixed_inc_merges\": %llu, "
      "\"mixed_scratch_merges\": %llu, \"moved_pct_drift\": %.2f}\n",
      n, bench_timer.millis(),
      static_cast<unsigned long long>(d.inc_merges + m.inc_merges +
                                      d.scratch_merges + m.scratch_merges),
      static_cast<unsigned long long>(d.inc_merges),
      static_cast<unsigned long long>(d.scratch_merges), drift_ratio,
      d.touched, static_cast<unsigned long long>(m.inc_merges),
      static_cast<unsigned long long>(m.scratch_merges),
      100.0 * static_cast<double>(d.moved) /
          static_cast<double>(d.surviving > 0 ? d.surviving : 1));
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
