// E2 — Lemma 1: cost-multiplier normalization.
//
// Shifting every multiplier by cm(h) changes any placement's cost by the
// instance constant cm(h)·W (W = total edge weight) and nothing else, so
// optimal solutions coincide; the solver run under general multipliers
// equals the normalized run plus the constant.
#include <cstdio>
#include <iostream>

#include "runtime/solver.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "hierarchy/cost.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

int run() {
  exp::print_header("E2", "cost-multiplier normalization (Lemma 1)",
                    "cost_general(p) = cost_normalized(p) + cm(h) * W for "
                    "every placement; solver outputs coincide");
  const Hierarchy general({2, 2}, {6.0, 3.0, 1.5});
  const Hierarchy normalized = general.normalized();
  bool all_ok = true;
  Table table({"family", "n", "W", "cm(h)*W", "cost general",
               "cost normalized", "difference", "identity"});
  for (const auto family : exp::all_families()) {
    const Vertex n = 40;
    const Graph g = exp::make_workload(family, n, general, 7);
    const double offset = general.cm(2) * g.total_edge_weight();
    SolverOptions opt;
    opt.num_trees = 2;
    opt.units_override = 8;
    opt.seed = 11;
    const HgpResult rg = solve_hgp(g, general, opt);
    const HgpResult rn = solve_hgp(g, normalized, opt);
    // Same placements (the DP objective only reads cm differences)...
    const bool same_placement = rg.placement.leaf_of == rn.placement.leaf_of;
    // ...and the additive identity holds for that placement.
    const double renormalized =
        placement_cost(g, normalized, rg.placement) + offset;
    const bool identity = std::abs(renormalized - rg.cost) < 1e-9;
    table.row()
        .add(exp::family_name(family))
        .add(g.vertex_count())
        .add(g.total_edge_weight())
        .add(offset)
        .add(rg.cost)
        .add(rn.cost)
        .add(rg.cost - rn.cost)
        .add(identity && same_placement ? "yes" : "NO");
    all_ok &= identity && same_placement;
  }
  table.print(std::cout);
  std::printf("\n");
  const bool ok =
      exp::check("normalization preserves solutions and shifts cost by "
                 "cm(h)*W exactly", all_ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
