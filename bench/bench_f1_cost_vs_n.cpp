// F1 — figure: communication cost vs task count, all algorithms.
//
// The series the paper's evaluation would have plotted: on clustered
// workloads over a socket/core hierarchy, cost grows with n for every
// algorithm, with the expected ordering random > greedy > partitioners >
// hgp-dp.
#include <cstdio>
#include <iostream>

#include "exp/algorithms.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

int run() {
  exp::print_header("F1", "cost vs n (figure)",
                    "hierarchy-aware algorithms dominate oblivious ones at "
                    "every size; hgp-dp tracks the best");
  const Hierarchy h = exp::hierarchy_two_level(2, 4);
  const auto algos = exp::comparison_algorithms(0.5, 3);
  std::vector<std::string> headers{"n"};
  for (const auto& a : algos) headers.push_back(a.name);
  Table table(headers);
  CsvWriter csv(headers);
  bool ordering_ok = true;
  for (const Vertex n : {32, 64, 128, 256}) {
    const Graph g =
        exp::make_workload(exp::Family::PlantedPartition, n, h, 23);
    table.row().add(n);
    csv.row().add(static_cast<std::int64_t>(n));
    double random_cost = -1, dp_cost = -1;
    for (const auto& a : algos) {
      const auto res = a.run(g, h, 41);
      table.add(res.cost);
      csv.add(res.cost);
      if (a.name == "random") random_cost = res.cost;
      if (a.name == "hgp-dp") dp_cost = res.cost;
    }
    ordering_ok &= dp_cost < random_cost;
  }
  table.print(std::cout);
  exp::maybe_write_csv(csv, "bench_f1_cost_vs_n");
  std::printf("\n");
  const bool ok =
      exp::check("hgp-dp below random placement at every n", ordering_ok);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
