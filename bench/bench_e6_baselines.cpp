// E6 — the paper's motivation: hierarchy-aware placement beats
// hierarchy-oblivious heuristics on streaming workloads.
//
// Compares every implemented algorithm on each workload family (socket /
// core / hyperthread hierarchy).  The shape to reproduce: random ≫ greedy
// ≳ recursive-bisect / multilevel ≳ hgp-dp, with the DP winning or tying
// on the clustered and streaming families it was designed for.
#include <cstdio>
#include <iostream>
#include <map>

#include "exp/algorithms.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

int run() {
  exp::print_header("E6", "algorithm comparison on motivating workloads (§1)",
                    "hierarchy-aware placement reduces communication cost "
                    "vs oblivious baselines");
  const Hierarchy h = exp::hierarchy_socket_core_ht();
  const auto algos = exp::comparison_algorithms(0.5, 3);
  const int seeds = 3;

  Table table({"family", "algorithm", "mean cost", "vs random", "violation",
               "time (ms)"});
  bool solver_always_beats_random = true;
  for (const auto family : exp::all_families()) {
    std::map<std::string, Samples> cost, viol, ms;
    for (int s = 0; s < seeds; ++s) {
      const Graph g = exp::make_workload(family, 96, h,
                                         static_cast<std::uint64_t>(s) + 1);
      for (const auto& a : algos) {
        const auto res = a.run(g, h, static_cast<std::uint64_t>(s) * 7 + 1);
        cost[a.name].add(res.cost);
        viol[a.name].add(res.max_violation);
        ms[a.name].add(res.seconds * 1e3);
      }
    }
    const double random_cost = cost.at("random").mean();
    for (const auto& a : algos) {
      table.row()
          .add(exp::family_name(family))
          .add(a.name)
          .add(cost.at(a.name).mean())
          .add(random_cost > 0 ? cost.at(a.name).mean() / random_cost : 1.0)
          .add(viol.at(a.name).mean(), 2)
          .add(ms.at(a.name).mean(), 1);
    }
    solver_always_beats_random &=
        cost.at("hgp-dp").mean() < random_cost;
  }
  table.print(std::cout);
  std::printf("\n");
  const bool ok = exp::check(
      "hgp-dp beats random placement on every family", solver_always_beats_random);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hgp

int main() { return hgp::run(); }
