#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/hierarchy.hpp"
#include "hierarchy/placement.hpp"
#include "hierarchy/placement_io.hpp"

namespace hgp {
namespace {

Placement random_placement(const Graph& g, const Hierarchy& h, Rng& rng) {
  Placement p;
  p.leaf_of.resize(static_cast<std::size_t>(g.vertex_count()));
  for (auto& leaf : p.leaf_of) {
    leaf = narrow<LeafId>(rng.next_below(
        static_cast<std::uint64_t>(h.leaf_count())));
  }
  return p;
}

TEST(PlacementCost, HandComputedExample) {
  // Path 0-1-2 with weights 2, 3; hierarchy 2×2, cm = {4, 1, 0}.
  GraphBuilder b(3);
  b.add_edge(0, 1, 2.0);
  b.add_edge(1, 2, 3.0);
  b.set_demand(0, 0.5);
  b.set_demand(1, 0.5);
  b.set_demand(2, 0.5);
  const Graph g = b.build();
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  // Leaves: 0,1 under node A; 2,3 under node B.
  Placement p{{0, 1, 2}};
  // Edge (0,1): same level-1 node, LCA level 1 → cm 1 → cost 2.
  // Edge (1,2): across sockets, LCA level 0 → cm 4 → cost 12.
  EXPECT_DOUBLE_EQ(placement_cost(g, h, p), 14.0);
}

TEST(PlacementCost, ColocationCostsLeafMultiplier) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 5.0);
  b.set_demand(0, 0.5);
  b.set_demand(1, 0.5);
  const Graph g = b.build();
  const Hierarchy h({2}, {3.0, 1.0});  // NOT normalized
  Placement same{{0, 0}};
  Placement split{{0, 1}};
  EXPECT_DOUBLE_EQ(placement_cost(g, h, same), 5.0);   // cm(1)·w
  EXPECT_DOUBLE_EQ(placement_cost(g, h, split), 15.0); // cm(0)·w
}

TEST(PlacementCost, MirrorIdentityOnNormalizedHierarchies) {
  // Lemma 2: Eq.(1) == Eq.(3) whenever cm(h) = 0.
  Rng rng(1);
  const Hierarchy h({2, 3}, {7.0, 2.0, 0.0});
  for (int round = 0; round < 20; ++round) {
    Graph g = gen::erdos_renyi(25, 0.25, rng, gen::WeightRange{1.0, 9.0});
    gen::set_uniform_demands(g, 0.1);
    const Placement p = random_placement(g, h, rng);
    EXPECT_NEAR(placement_cost(g, h, p), placement_cost_mirror(g, h, p), 1e-9);
  }
}

TEST(PlacementCost, MirrorOffsetOnGeneralHierarchies) {
  // Lemma 1 accounting: cost = mirror cost + cm(h) · total edge weight.
  Rng rng(2);
  const Hierarchy h({2, 2}, {9.0, 4.0, 1.5});
  for (int round = 0; round < 20; ++round) {
    Graph g = gen::erdos_renyi(20, 0.3, rng, gen::WeightRange{1.0, 5.0});
    gen::set_uniform_demands(g, 0.2);
    const Placement p = random_placement(g, h, rng);
    EXPECT_NEAR(placement_cost(g, h, p),
                placement_cost_mirror(g, h, p) +
                    h.cm(2) * g.total_edge_weight(),
                1e-9);
  }
}

TEST(PlacementCost, NormalizationPreservesRanking) {
  // Lemma 1: the additive offset is placement-independent, so the order of
  // any two placements is identical under original and normalized cm.
  Rng rng(3);
  const Hierarchy h({2, 2}, {6.0, 3.0, 2.0});
  const Hierarchy hn = h.normalized();
  Graph g = gen::erdos_renyi(18, 0.3, rng, gen::WeightRange{1.0, 4.0});
  gen::set_uniform_demands(g, 0.2);
  for (int round = 0; round < 15; ++round) {
    const Placement a = random_placement(g, h, rng);
    const Placement b = random_placement(g, h, rng);
    const double diff_general = placement_cost(g, h, a) - placement_cost(g, h, b);
    const double diff_norm = placement_cost(g, hn, a) - placement_cost(g, hn, b);
    EXPECT_NEAR(diff_general, diff_norm, 1e-9);
  }
}

TEST(PlacementCost, TrivialLowerBoundHolds) {
  Rng rng(4);
  const Hierarchy h({2, 2}, {5.0, 2.0, 1.0});
  Graph g = gen::erdos_renyi(16, 0.4, rng);
  gen::set_uniform_demands(g, 0.2);
  const double lb = trivial_cost_lower_bound(g, h);
  EXPECT_DOUBLE_EQ(lb, g.total_edge_weight());
  for (int round = 0; round < 10; ++round) {
    EXPECT_GE(placement_cost(g, h, random_placement(g, h, rng)), lb - 1e-9);
  }
}

TEST(LoadReport, LoadsAggregateUpTheHierarchy) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  for (Vertex v = 0; v < 4; ++v) b.set_demand(v, 0.5);
  const Graph g = b.build();
  const Hierarchy h({2, 2}, {2.0, 1.0, 0.0});
  const Placement p{{0, 0, 1, 2}};
  const LoadReport r = load_report(g, h, p);
  // Leaf loads: leaf0 = 1.0, leaf1 = 0.5, leaf2 = 0.5.
  EXPECT_DOUBLE_EQ(r.load[2][0], 1.0);
  EXPECT_DOUBLE_EQ(r.load[2][1], 0.5);
  EXPECT_DOUBLE_EQ(r.load[2][2], 0.5);
  EXPECT_DOUBLE_EQ(r.load[2][3], 0.0);
  // Level-1: node0 = 1.5, node1 = 0.5.  Root = 2.0.
  EXPECT_DOUBLE_EQ(r.load[1][0], 1.5);
  EXPECT_DOUBLE_EQ(r.load[1][1], 0.5);
  EXPECT_DOUBLE_EQ(r.load[0][0], 2.0);
}

TEST(LoadReport, ViolationFactors) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  for (Vertex v = 0; v < 3; ++v) b.set_demand(v, 0.6);
  const Graph g = b.build();
  const Hierarchy h({2}, {1.0, 0.0});
  const Placement crowded{{0, 0, 1}};
  const LoadReport r = load_report(g, h, crowded);
  EXPECT_NEAR(r.leaf_violation(), 1.2, 1e-12);  // 1.2 demand on capacity 1
  EXPECT_FALSE(r.feasible());
  const Placement spread{{0, 1, 1}};
  // Still 1.2 on leaf 1.
  EXPECT_FALSE(load_report(g, h, spread).feasible());
}

TEST(LoadReport, FeasiblePlacementPasses) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  b.set_demand(0, 1.0);
  b.set_demand(1, 1.0);
  const Graph g = b.build();
  const Hierarchy h({2}, {1.0, 0.0});
  EXPECT_TRUE(load_report(g, h, Placement{{0, 1}}).feasible());
}

TEST(Placement, ValidationCatchesErrors) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  b.set_demand(0, 0.5);
  b.set_demand(1, 0.5);
  const Graph g = b.build();
  const Hierarchy h({2}, {1.0, 0.0});
  EXPECT_THROW(validate_placement(g, h, Placement{{0}}), CheckError);
  EXPECT_THROW(validate_placement(g, h, Placement{{0, 2}}), CheckError);
  EXPECT_THROW(validate_placement(g, h, Placement{{0, -1}}), CheckError);
}

TEST(Placement, DemandlessGraphRejected) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  const Graph g = b.build();
  const Hierarchy h({2}, {1.0, 0.0});
  EXPECT_THROW(validate_placement(g, h, Placement{{0, 1}}), CheckError);
}

TEST(PlacementIo, RoundTrip) {
  Placement p{{3, 0, 2, 2, 1}};
  std::stringstream ss;
  io::write_placement(p, ss);
  const Placement q = io::read_placement(ss);
  EXPECT_EQ(p.leaf_of, q.leaf_of);
}

TEST(PlacementIo, SkipsCommentsAndValidates) {
  std::stringstream ok("# header\n1 5\n0 2\n");
  const Placement p = io::read_placement(ok);
  EXPECT_EQ(p.leaf_of, (std::vector<LeafId>{2, 5}));

  std::stringstream dup("0 1\n0 2\n");
  EXPECT_THROW(io::read_placement(dup), CheckError);
  std::stringstream gap("0 1\n2 2\n");
  EXPECT_THROW(io::read_placement(gap), CheckError);
  std::stringstream neg("0 -1\n");
  EXPECT_THROW(io::read_placement(neg), CheckError);
  std::stringstream malformed("zero one\n");
  EXPECT_THROW(io::read_placement(malformed), CheckError);
}

}  // namespace
}  // namespace hgp
