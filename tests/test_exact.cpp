#include <gtest/gtest.h>

#include "baseline/exact.hpp"
#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"

namespace hgp {
namespace {

/// Unpruned brute force over all placements (reference for the reference).
double naive_optimum(const Graph& g, const Hierarchy& h, bool* feasible) {
  const Vertex n = g.vertex_count();
  const auto k = static_cast<std::size_t>(h.leaf_count());
  std::vector<LeafId> assign(static_cast<std::size_t>(n), 0);
  double best = std::numeric_limits<double>::infinity();
  for (;;) {
    std::vector<double> load(k, 0.0);
    bool ok = true;
    for (Vertex v = 0; v < n && ok; ++v) {
      load[static_cast<std::size_t>(assign[static_cast<std::size_t>(v)])] +=
          g.demand(v);
      ok = load[static_cast<std::size_t>(
               assign[static_cast<std::size_t>(v)])] <= 1.0 + 1e-9;
    }
    if (ok) {
      Placement p{assign};
      best = std::min(best, placement_cost(g, h, p));
    }
    // Next assignment in mixed radix.
    Vertex i = 0;
    while (i < n) {
      if (++assign[static_cast<std::size_t>(i)] <
          narrow<LeafId>(k)) {
        break;
      }
      assign[static_cast<std::size_t>(i)] = 0;
      ++i;
    }
    if (i == n) break;
  }
  *feasible = best < std::numeric_limits<double>::infinity();
  return best;
}

TEST(ExactHgp, MatchesNaiveBruteForce) {
  Rng rng(1);
  for (int round = 0; round < 6; ++round) {
    Graph g = gen::erdos_renyi(6, 0.5, rng, gen::WeightRange{1.0, 9.0});
    gen::set_random_demands(g, rng, 0.2, 0.6);
    const Hierarchy h({2, 2}, {3.0, 1.0, 0.0});
    bool feasible = false;
    const double naive = naive_optimum(g, h, &feasible);
    const ExactResult exact = solve_exact_hgp(g, h);
    ASSERT_EQ(exact.feasible, feasible) << "round " << round;
    if (feasible) {
      EXPECT_NEAR(exact.cost, naive, 1e-9) << "round " << round;
      EXPECT_NEAR(placement_cost(g, h, exact.placement), exact.cost, 1e-9);
    }
  }
}

TEST(ExactHgp, SymmetryPruningExploresFarFewerNodes) {
  Rng rng(2);
  Graph g = gen::erdos_renyi(8, 0.4, rng, gen::WeightRange{1.0, 5.0});
  gen::set_uniform_demands(g, 0.4);
  const Hierarchy h({2, 2, 2}, {4.0, 2.0, 1.0, 0.0});
  const ExactResult exact = solve_exact_hgp(g, h);
  ASSERT_TRUE(exact.feasible);
  // 8 leaves, 8 tasks: unpruned space is 8^8 ≈ 1.6e7; pruned must be far
  // below.
  EXPECT_LT(exact.nodes_explored, 2'000'000u);
}

TEST(ExactHgp, InfeasibleWhenDemandExceedsCapacity) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  for (Vertex v = 0; v < 3; ++v) b.set_demand(v, 0.9);
  const Hierarchy h = Hierarchy::kbgp(2);
  const ExactResult r = solve_exact_hgp(b.build(), h);
  EXPECT_FALSE(r.feasible);
}

TEST(ExactHgp, CapacityFactorUnlocksInfeasibleInstances) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  for (Vertex v = 0; v < 3; ++v) b.set_demand(v, 0.9);
  ExactOptions opt;
  opt.capacity_factor = 2.0;
  const ExactResult r = solve_exact_hgp(b.build(), Hierarchy::kbgp(2), opt);
  EXPECT_TRUE(r.feasible);
}

TEST(ExactHgp, PrefersColocationOfHeavyEdges) {
  // Two heavy pairs; capacity 2×0.5 per leaf: optimal keeps pairs together.
  GraphBuilder b(4);
  b.add_edge(0, 1, 100.0);
  b.add_edge(2, 3, 100.0);
  b.add_edge(1, 2, 1.0);
  for (Vertex v = 0; v < 4; ++v) b.set_demand(v, 0.5);
  const Graph g = b.build();
  const ExactResult r = solve_exact_hgp(g, Hierarchy::kbgp(2));
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.placement[0], r.placement[1]);
  EXPECT_EQ(r.placement[2], r.placement[3]);
  EXPECT_NEAR(r.cost, 1.0, 1e-9);  // only the light edge crosses
}

TEST(ExactHgp, NodeBudgetEnforced) {
  Rng rng(3);
  // Demands of 0.5 force spreading, so the zero-cost shortcut (everything
  // on one leaf) is unavailable and the search actually branches.
  Graph g = gen::complete(9, gen::WeightRange{1.0, 2.0}, &rng);
  gen::set_uniform_demands(g, 0.5);
  ExactOptions opt;
  opt.max_nodes = 50;
  EXPECT_THROW(solve_exact_hgp(g, Hierarchy::kbgp(8), opt), CheckError);
}

TEST(ExactHgpt, TwoLeafHandExample) {
  Tree t = Tree::from_parents({-1, 0, 0}, {0, 5.0, 7.0});
  t.set_leaf_demands(std::vector<double>{0.6, 0.6});
  const ExactTreeResult r = solve_exact_hgpt(t, Hierarchy::kbgp(2));
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.cost, 5.0, 1e-9);  // (5+5)/2, see TreeDp test
  EXPECT_NE(r.assignment.of(1), r.assignment.of(2));
}

TEST(ExactHgpt, ColocationWhenFits) {
  Tree t = Tree::from_parents({-1, 0, 0}, {0, 5.0, 7.0});
  t.set_leaf_demands(std::vector<double>{0.4, 0.4});
  const ExactTreeResult r = solve_exact_hgpt(t, Hierarchy::kbgp(2));
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.cost, 0.0, 1e-9);
}

TEST(ExactHgpt, DeterministicAndConsistentWithAssignmentCost) {
  Rng rng(4);
  const Graph g = gen::random_tree(7, rng, gen::WeightRange{1.0, 9.0});
  Tree t = Tree::from_graph(g, 0);
  std::vector<double> d(t.leaves().size(), 0.5);
  t.set_leaf_demands(d);
  const Hierarchy h({2, 2}, {3.0, 1.0, 0.0});
  const ExactTreeResult a = solve_exact_hgpt(t, h);
  const ExactTreeResult b = solve_exact_hgpt(t, h);
  ASSERT_TRUE(a.feasible);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_NEAR(assignment_cost(t, h, a.assignment), a.cost, 1e-9);
}

}  // namespace
}  // namespace hgp
