// Resilience-layer tests: status taxonomy, deadlines/cancellation,
// per-tree fault isolation, and the hgp → multilevel → greedy fallback
// chain (see docs/RESILIENCE.md).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/multilevel.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"  // TraceBuffer directly: obs.hpp omits it under OFF
#include "decomp/builder.hpp"
#include "graph/generators.hpp"
#include "parallel/parallel_for.hpp"
#include "runtime/solver.hpp"
#include "util/deadline.hpp"
#include "util/fault_injector.hpp"
#include "util/status.hpp"

namespace hgp {
namespace {

Graph workload(std::uint64_t seed, Vertex n = 24) {
  Rng rng(seed);
  Graph g = gen::planted_partition(n, 4, 0.75, 0.05, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / n);
  return g;
}

const Hierarchy& hier() {
  static const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  return h;
}

FaultInjector::Fault throw_fault() {
  FaultInjector::Fault f;
  f.action = FaultInjector::Action::kThrow;
  return f;
}

FaultInjector::Fault stall_fault(double ms) {
  FaultInjector::Fault f;
  f.action = FaultInjector::Action::kStall;
  f.stall_ms = ms;
  return f;
}

// Captures the global trace buffer for one test.  Tracing is off by default
// process-wide, so flipping it on/off here cannot leak into other tests.
struct TraceCapture {
  TraceCapture() {
    obs::TraceBuffer::global().clear();
    obs::TraceBuffer::global().set_enabled(true);
  }
  ~TraceCapture() {
    obs::TraceBuffer::global().set_enabled(false);
    obs::TraceBuffer::global().clear();
  }
  // A span is recorded only when its destructor runs, so presence in the
  // snapshot is proof the span closed (including during unwinding).
  static std::size_t closed(const char* name) {
    std::size_t n = 0;
    for (const obs::TraceEvent& e : obs::TraceBuffer::global().snapshot()) {
      if (std::string_view(e.name) == name) ++n;
    }
    return n;
  }
};

FaultInjector::Fault infeasible_fault() {
  FaultInjector::Fault f;
  f.action = FaultInjector::Action::kInfeasible;
  return f;
}

TEST(StatusTaxonomy, CodesHaveStableNames) {
  EXPECT_STREQ(status_code_name(StatusCode::kOk), "OK");
  EXPECT_STREQ(status_code_name(StatusCode::kInvalidInput), "INVALID_INPUT");
  EXPECT_STREQ(status_code_name(StatusCode::kInfeasible), "INFEASIBLE");
  EXPECT_STREQ(status_code_name(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(status_code_name(StatusCode::kCancelled), "CANCELLED");
  EXPECT_STREQ(status_code_name(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusTaxonomy, SolveErrorIsACheckError) {
  // API compatibility: pre-taxonomy call sites catch CheckError.
  const SolveError err(StatusCode::kDeadlineExceeded, "budget gone");
  EXPECT_EQ(err.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(std::string(err.what()).find("DEADLINE_EXCEEDED"),
            std::string::npos);
  const CheckError* base = &err;
  EXPECT_NE(base, nullptr);
}

TEST(StatusTaxonomy, ClassifiesInFlightExceptions) {
  try {
    throw SolveError(StatusCode::kInfeasible, "too big");
  } catch (...) {
    const Status s = status_from_current_exception();
    EXPECT_EQ(s.code, StatusCode::kInfeasible);
    EXPECT_EQ(s.message, "too big");
  }
  try {
    throw CheckError("bare invariant failure");
  } catch (...) {
    EXPECT_EQ(status_from_current_exception().code, StatusCode::kInternal);
  }
  try {
    throw 42;
  } catch (...) {
    EXPECT_EQ(status_from_current_exception().code, StatusCode::kInternal);
  }
}

TEST(DeadlineTest, NeverAndExpiry) {
  const Deadline never = Deadline::never();
  EXPECT_TRUE(never.is_never());
  EXPECT_FALSE(never.expired());
  const Deadline gone = Deadline::after_ms(-1);
  EXPECT_TRUE(gone.expired());
  EXPECT_EQ(gone.remaining_ms(), 0);  // clamped, never negative
  const Deadline later = Deadline::after_ms(60'000);
  EXPECT_FALSE(later.expired());
  EXPECT_GT(later.remaining_ms(), 0);
}

TEST(DeadlineTest, HugeBudgetSaturatesInsteadOfOverflowing) {
  // --timeout-ms near int64 max used to overflow the steady_clock addition
  // inside after_ms; the clamp pins such budgets at the clock's horizon.
  const double huge = 9.2e18;  // ~int64 max in ms, far past the ns range
  const Deadline d = Deadline::after_ms(huge);
  EXPECT_FALSE(d.is_never());  // armed, but effectively unbounded
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 1e9);

  const Deadline inf_d =
      Deadline::after_ms(std::numeric_limits<double>::infinity());
  EXPECT_FALSE(inf_d.expired());
  const Deadline nan_d =
      Deadline::after_ms(std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(nan_d.expired());
}

TEST(DeadlineTest, ExecContextChecksThrowTyped) {
  ExecContext unconstrained;
  unconstrained.check("test");  // no-throw

  ExecContext past;
  past.deadline = Deadline::after_ms(-1);
  try {
    past.check("test stage");
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kDeadlineExceeded);
  }

  CancelToken token;
  token.request_cancel();
  ExecContext cancelled;
  cancelled.cancel = &token;
  // Cancellation wins over an expired deadline.
  cancelled.deadline = Deadline::after_ms(-1);
  try {
    cancelled.check("test stage");
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCancelled);
  }
}

TEST(FaultInjectorTest, NoOpByDefault) {
  FaultInjector::instance().on_site("solve_one_tree", 0);  // must not throw
}

TEST(Resilience, SurvivingTreeWinsWhenOthersThrow) {
  const Graph g = workload(1);
  SolverOptions opt;
  opt.num_trees = 4;
  // Kill every tree except the last; the forest arg-min must run over the
  // lone survivor.
  // Each scope disarms only its own (site, index) key, so all three must
  // be scoped — a raw arm() here would leak into later tests.
  FaultScope f0("solve_one_tree", 0, throw_fault());
  FaultScope f1("solve_one_tree", 1, throw_fault());
  FaultScope f2("solve_one_tree", 2, throw_fault());
  const HgpResult r = solve_hgp(g, hier(), opt);
  EXPECT_EQ(r.method, SolveMethod::kHgp);
  EXPECT_TRUE(r.status.ok());
  EXPECT_EQ(r.best_tree, 3);
  ASSERT_EQ(r.attempts.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(r.attempts[static_cast<std::size_t>(i)].status,
              StatusCode::kInternal);
    EXPECT_FALSE(r.attempts[static_cast<std::size_t>(i)].error.empty());
    EXPECT_TRUE(std::isinf(r.tree_costs[static_cast<std::size_t>(i)]));
  }
  EXPECT_TRUE(r.attempts[3].ok());
  EXPECT_EQ(r.placement.leaf_of.size(),
            static_cast<std::size_t>(g.vertex_count()));
  EXPECT_NEAR(r.cost, placement_cost(g, hier(), r.placement), 1e-9);
}

TEST(Resilience, SurvivorBeatsTimedOutTreesUnderPool) {
  const Graph g = workload(2);
  ThreadPool pool(2);
  SolverOptions opt;
  opt.num_trees = 4;
  opt.pool = &pool;
  opt.timeout_ms = 2000;
  // Tree 0 stalls far past the deadline; its chunk-mate (tree 1) then sees
  // the expired deadline too.  Trees 2 and 3 run on the other worker and
  // finish long before the budget is gone, so the arg-min has survivors.
  FaultScope stall("solve_one_tree", 0, stall_fault(2500));
  const HgpResult r = solve_hgp(g, hier(), opt);
  EXPECT_EQ(r.method, SolveMethod::kHgp);
  EXPECT_TRUE(r.status.ok());
  ASSERT_EQ(r.attempts.size(), 4u);
  EXPECT_EQ(r.attempts[0].status, StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r.attempts[2].ok());
  EXPECT_TRUE(r.attempts[3].ok());
  EXPECT_TRUE(r.best_tree == 2 || r.best_tree == 3) << r.best_tree;
}

TEST(Resilience, AllTreesThrowFallsBackToMultilevel) {
  const Graph g = workload(3);
  SolverOptions opt;
  opt.num_trees = 3;
  opt.seed = 9;
  FaultScope all("solve_one_tree", FaultInjector::kEveryIndex, throw_fault());
  const HgpResult r = solve_hgp(g, hier(), opt);
  EXPECT_EQ(r.method, SolveMethod::kMultilevel);
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(r.status.code, StatusCode::kInternal);
  EXPECT_EQ(r.best_tree, -1);
  ASSERT_EQ(r.attempts.size(), 3u);
  for (const TreeAttempt& a : r.attempts) {
    EXPECT_EQ(a.status, StatusCode::kInternal);
  }
  // The fallback is the deterministic multilevel run under the same seed.
  Rng rng(opt.seed);
  const Placement direct = multilevel_placement(g, hier(), rng);
  EXPECT_EQ(r.placement.leaf_of, direct.leaf_of);
  EXPECT_NEAR(r.cost, placement_cost(g, hier(), direct), 1e-9);
}

TEST(Resilience, DeadlineKillingAllTreesDegradesWithDeadlineStatus) {
  const Graph g = workload(4);
  SolverOptions opt;
  opt.num_trees = 2;
  opt.timeout_ms = 40;
  // Both trees stall past the 40ms budget, so the whole primary pipeline is
  // killed by the deadline and the solve must still hand back a placement.
  FaultScope all("solve_one_tree", FaultInjector::kEveryIndex,
                 stall_fault(120));
  const HgpResult r = solve_hgp(g, hier(), opt);
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(r.method, SolveMethod::kMultilevel);
  EXPECT_EQ(r.status.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.placement.leaf_of.size(),
            static_cast<std::size_t>(g.vertex_count()));
  for (const TreeAttempt& a : r.attempts) {
    EXPECT_EQ(a.status, StatusCode::kDeadlineExceeded);
  }
}

TEST(Resilience, InjectedInfeasibilityClassifiedAndDegraded) {
  const Graph g = workload(5);
  SolverOptions opt;
  opt.num_trees = 2;
  FaultScope all("solve_one_tree", FaultInjector::kEveryIndex,
                 infeasible_fault());
  const HgpResult r = solve_hgp(g, hier(), opt);
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(r.status.code, StatusCode::kInfeasible);
  for (const TreeAttempt& a : r.attempts) {
    EXPECT_EQ(a.status, StatusCode::kInfeasible);
  }
}

TEST(Resilience, FallbackNoneThrowsClassifiedError) {
  const Graph g = workload(6);
  SolverOptions opt;
  opt.num_trees = 2;
  opt.fallback = FallbackPolicy::kNone;
  FaultScope all("solve_one_tree", FaultInjector::kEveryIndex, throw_fault());
  try {
    solve_hgp(g, hier(), opt);
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInternal);
    EXPECT_NE(std::string(e.what()).find("injected fault"),
              std::string::npos);
  }
}

TEST(Resilience, DeadlineMidSolveDegradesInsteadOfThrowing) {
  const Graph g = workload(7);
  SolverOptions opt;
  opt.num_trees = 4;
  opt.timeout_ms = 0.01;  // expires before any real work is possible
  const HgpResult r = solve_hgp(g, hier(), opt);
  EXPECT_TRUE(r.degraded());
  EXPECT_EQ(r.status.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r.placement.leaf_of.size(),
            static_cast<std::size_t>(g.vertex_count()));
  EXPECT_NEAR(r.cost, placement_cost(g, hier(), r.placement), 1e-9);
}

TEST(Resilience, CancellationThrowsInsteadOfDegrading) {
  const Graph g = workload(8);
  CancelToken token;
  token.request_cancel();
  SolverOptions opt;
  opt.num_trees = 2;
  opt.cancel = &token;
  try {
    solve_hgp(g, hier(), opt);
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCancelled);
  }
}

TEST(Resilience, InvalidInputIsTyped) {
  const Graph g = gen::grid2d(3, 3);  // no demands
  try {
    solve_hgp(g, hier(), {});
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInvalidInput);
  }
  const Graph w = workload(9);
  SolverOptions bad;
  bad.num_trees = 0;
  EXPECT_THROW(solve_hgp(w, hier(), bad), SolveError);
}

TEST(Resilience, TreeDpHonoursDeadline) {
  const Graph g = workload(10);
  Rng rng(1);
  const FmCutter cutter;
  const DecompTree dt = build_decomp_tree(g, rng, cutter);
  ExecContext exec;
  exec.deadline = Deadline::after_ms(-1);
  TreeSolverOptions opt;
  opt.exec = &exec;
  try {
    solve_hgpt(dt.tree(), hier(), opt);
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(Resilience, CancelStopsParallelForPromptly) {
  ThreadPool pool(2);
  CancelToken token;
  ExecContext exec;
  exec.cancel = &token;
  std::atomic<std::size_t> processed{0};
  const std::size_t n = 200'000;
  try {
    parallel_for(
        pool, 0, n,
        [&](std::size_t i) {
          if (i == 10) token.request_cancel();
          processed.fetch_add(1, std::memory_order_relaxed);
        },
        1, &exec);
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCancelled);
  }
  // Cancellation is checked before every item, so each chunk stops within
  // one iteration of the flag flipping.
  EXPECT_LT(processed.load(), n / 2);
}

TEST(Resilience, ExpiredDeadlineStopsParallelFor) {
  ThreadPool pool(2);
  ExecContext exec;
  exec.deadline = Deadline::after_ms(-1);
  std::atomic<std::size_t> processed{0};
  const std::size_t n = 100'000;
  try {
    parallel_for(
        pool, 0, n,
        [&](std::size_t i) {
          (void)i;
          processed.fetch_add(1, std::memory_order_relaxed);
        },
        1, &exec);
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kDeadlineExceeded);
  }
  // The deadline is polled on a stride, so each chunk does at most one
  // stride of work.
  EXPECT_LT(processed.load(), 4096u);
}

TEST(Resilience, AttemptsRecordElapsedTime) {
  const Graph g = workload(11);
  SolverOptions opt;
  opt.num_trees = 2;
  const HgpResult r = solve_hgp(g, hier(), opt);
  ASSERT_EQ(r.attempts.size(), 2u);
  for (const TreeAttempt& a : r.attempts) {
    EXPECT_TRUE(a.ok());
    EXPECT_GE(a.elapsed_ms, 0.0);
    EXPECT_LT(a.cost, std::numeric_limits<double>::infinity());
  }
}

// --- Fallback-chain stage boundaries --------------------------------------
//
// Each stage of hgp → multilevel → greedy can die independently; these
// tests kill the chain at every boundary and assert both the terminal
// status and that every entered trace span closed (spans are recorded at
// destruction, so a span that leaked through the unwind would be missing
// from the snapshot).

TEST(Resilience, FallbackSpansCloseWhenMultilevelRescues) {
  const Graph g = workload(12);
  SolverOptions opt;
  opt.num_trees = 2;
  opt.seed = 13;
  FaultScope trees("solve_one_tree", FaultInjector::kEveryIndex,
                   throw_fault());
  TraceCapture trace;
  const HgpResult r = solve_hgp(g, hier(), opt);
  EXPECT_EQ(r.method, SolveMethod::kMultilevel);
  EXPECT_EQ(r.status.code, StatusCode::kInternal);
#if HGP_OBS_ENABLED
  EXPECT_EQ(TraceCapture::closed("solve"), 1u);
  EXPECT_EQ(TraceCapture::closed("solve.fallback"), 1u);
  EXPECT_EQ(TraceCapture::closed("fallback.multilevel"), 1u);
  // The chain stopped at stage one: greedy must never have been entered.
  EXPECT_EQ(TraceCapture::closed("fallback.greedy"), 0u);
#endif
}

TEST(Resilience, MultilevelStageFaultFallsThroughToGreedy) {
  const Graph g = workload(13);
  SolverOptions opt;
  opt.num_trees = 2;
  opt.seed = 17;
  FaultScope trees("solve_one_tree", FaultInjector::kEveryIndex,
                   throw_fault());
  FaultScope ml("fallback_multilevel", 0, throw_fault());
  TraceCapture trace;
  const HgpResult r = solve_hgp(g, hier(), opt);
  EXPECT_EQ(r.method, SolveMethod::kGreedy);
  EXPECT_TRUE(r.degraded());
  // The surfaced status is the *primary* failure reason, not the
  // multilevel stage's own demise.
  EXPECT_EQ(r.status.code, StatusCode::kInternal);
  EXPECT_EQ(r.placement.leaf_of.size(),
            static_cast<std::size_t>(g.vertex_count()));
  EXPECT_LT(r.cost, std::numeric_limits<double>::infinity());
#if HGP_OBS_ENABLED
  // The multilevel span closed via unwinding; greedy closed normally.
  EXPECT_EQ(TraceCapture::closed("solve.fallback"), 1u);
  EXPECT_EQ(TraceCapture::closed("fallback.multilevel"), 1u);
  EXPECT_EQ(TraceCapture::closed("fallback.greedy"), 1u);
#endif
}

TEST(Resilience, FallbackChainExhaustionNamesEveryStage) {
  const Graph g = workload(14);
  SolverOptions opt;
  opt.num_trees = 2;
  FaultScope trees("solve_one_tree", FaultInjector::kEveryIndex,
                   throw_fault());
  FaultScope ml("fallback_multilevel", 0, throw_fault());
  FaultScope gr("fallback_greedy", 0, infeasible_fault());
  TraceCapture trace;
  try {
    solve_hgp(g, hier(), opt);
    FAIL() << "expected SolveError";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInfeasible);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("fallback chain exhausted"), std::string::npos) << msg;
    EXPECT_NE(msg.find("multilevel"), std::string::npos) << msg;
    EXPECT_NE(msg.find("greedy"), std::string::npos) << msg;
    // Stage statuses ride along for the postmortem: primary + multilevel
    // died as INTERNAL, greedy as INFEASIBLE.
    EXPECT_NE(msg.find("INTERNAL"), std::string::npos) << msg;
    EXPECT_NE(msg.find("INFEASIBLE"), std::string::npos) << msg;
  }
#if HGP_OBS_ENABLED
  // Even on the fully-exhausted path every entered span unwound cleanly.
  EXPECT_EQ(TraceCapture::closed("solve"), 1u);
  EXPECT_EQ(TraceCapture::closed("solve.fallback"), 1u);
  EXPECT_EQ(TraceCapture::closed("fallback.multilevel"), 1u);
  EXPECT_EQ(TraceCapture::closed("fallback.greedy"), 1u);
#endif
}

}  // namespace
}  // namespace hgp
