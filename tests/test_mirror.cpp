#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/mirror.hpp"

namespace hgp {
namespace {

Placement random_placement(const Graph& g, const Hierarchy& h, Rng& rng) {
  Placement p;
  p.leaf_of.resize(static_cast<std::size_t>(g.vertex_count()));
  for (auto& leaf : p.leaf_of) {
    leaf = narrow<LeafId>(
        rng.next_below(static_cast<std::uint64_t>(h.leaf_count())));
  }
  return p;
}

TEST(Mirror, SetsContainExactlyTheSubtreeTasks) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  for (Vertex v = 0; v < 4; ++v) b.set_demand(v, 0.4);
  const Graph g = b.build();
  const Hierarchy h({2, 2}, {2.0, 1.0, 0.0});
  const Placement p{{0, 1, 2, 3}};
  const MirrorFunction m = build_mirror(g, h, p);
  EXPECT_EQ(m.sets[0][0], (std::vector<Vertex>{0, 1, 2, 3}));
  EXPECT_EQ(m.sets[1][0], (std::vector<Vertex>{0, 1}));
  EXPECT_EQ(m.sets[1][1], (std::vector<Vertex>{2, 3}));
  EXPECT_EQ(m.sets[2][2], (std::vector<Vertex>{2}));
}

TEST(Mirror, StructureValidatesOnRandomPlacements) {
  Rng rng(1);
  const Hierarchy h({3, 2}, {4.0, 1.0, 0.0});
  for (int round = 0; round < 10; ++round) {
    Graph g = gen::erdos_renyi(20, 0.3, rng);
    gen::set_uniform_demands(g, 0.1);
    const Placement p = random_placement(g, h, rng);
    const MirrorFunction m = build_mirror(g, h, p);
    EXPECT_NO_THROW(validate_mirror_structure(g, h, m));
  }
}

TEST(Mirror, LiteralCostMatchesFastMirrorCost) {
  // The literal Eq.(3) evaluation (materializing every boundary) agrees
  // with the per-level aggregation in cost.cpp.
  Rng rng(2);
  const Hierarchy h({2, 2, 2}, {8.0, 4.0, 2.0, 0.0});
  for (int round = 0; round < 10; ++round) {
    Graph g = gen::erdos_renyi(24, 0.25, rng, gen::WeightRange{1.0, 6.0});
    gen::set_uniform_demands(g, 0.1);
    const Placement p = random_placement(g, h, rng);
    const MirrorFunction m = build_mirror(g, h, p);
    EXPECT_NEAR(mirror_cost_literal(g, h, m),
                placement_cost_mirror(g, h, p), 1e-9);
  }
}

TEST(Mirror, Lemma2EndToEnd) {
  // placement cost (Eq. 1) == literal mirror cost (Eq. 3) for normalized cm.
  Rng rng(3);
  const Hierarchy h({2, 3}, {5.0, 2.0, 0.0});
  for (int round = 0; round < 10; ++round) {
    Graph g = gen::planted_partition(18, 3, 0.7, 0.1, rng);
    gen::set_uniform_demands(g, 0.15);
    const Placement p = random_placement(g, h, rng);
    const MirrorFunction m = build_mirror(g, h, p);
    EXPECT_NEAR(placement_cost(g, h, p), mirror_cost_literal(g, h, m), 1e-9);
  }
}

TEST(Mirror, ValidationDetectsCorruptedLaminarFamily) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  for (Vertex v = 0; v < 4; ++v) b.set_demand(v, 0.4);
  const Graph g = b.build();
  const Hierarchy h({2, 2}, {2.0, 1.0, 0.0});
  MirrorFunction m = build_mirror(g, h, Placement{{0, 1, 2, 3}});
  // Move a vertex between sibling level-2 sets without updating level 1.
  m.sets[2][0] = {0, 2};
  m.sets[2][2] = {};
  EXPECT_THROW(validate_mirror_structure(g, h, m), CheckError);
}

TEST(Mirror, ValidationDetectsDuplicates) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  b.set_demand(0, 0.5);
  b.set_demand(1, 0.5);
  const Graph g = b.build();
  const Hierarchy h({2}, {1.0, 0.0});
  MirrorFunction m = build_mirror(g, h, Placement{{0, 1}});
  m.sets[1][0] = {0, 1};  // vertex 1 now appears twice at level 1
  EXPECT_THROW(validate_mirror_structure(g, h, m), CheckError);
}

}  // namespace
}  // namespace hgp
