// Contract-layer tests: each validator against deliberately corrupted
// inputs, plus the build-mode behaviour of the HGP_PRECONDITION /
// HGP_POSTCONDITION / HGP_INVARIANT macros (active outside NDEBUG or when
// forced by HGP_CONTRACTS, compiled out otherwise).
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "core/demand.hpp"
#include "core/signature.hpp"
#include "graph/generators.hpp"
#include "hierarchy/hierarchy.hpp"
#include "hierarchy/placement.hpp"
#include "util/contracts.hpp"
#include "util/status.hpp"

namespace hgp {
namespace {

// ---------------------------------------------------------------- macros

TEST(Contracts, PassingContractsAreSilentInEveryMode) {
  EXPECT_NO_THROW(HGP_PRECONDITION(1 + 1 == 2));
  EXPECT_NO_THROW(HGP_POSTCONDITION(true));
  EXPECT_NO_THROW(HGP_INVARIANT_MSG(2 > 1, "arithmetic holds"));
}

TEST(Contracts, FailuresThrowInternalSolveErrorWhenEnabled) {
  if (!contracts_enabled()) {
    GTEST_SKIP() << "contracts compiled out in this build";
  }
  try {
    HGP_PRECONDITION_MSG(false, "deliberate failure");
    FAIL() << "precondition did not throw";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInternal);
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("deliberate failure"),
              std::string::npos);
  }
  EXPECT_THROW(HGP_POSTCONDITION(1 < 0), SolveError);
  EXPECT_THROW(HGP_INVARIANT(false), SolveError);
}

// The release-mode guarantee: checks vanish entirely, so a false contract
// must NOT throw (the expression stays type-checked but unevaluated).
TEST(Contracts, FailuresAreNoopsWhenCompiledOut) {
  if (contracts_enabled()) {
    GTEST_SKIP() << "contracts active in this build";
  }
  EXPECT_NO_THROW(HGP_PRECONDITION(false));
  EXPECT_NO_THROW(HGP_POSTCONDITION_MSG(false, "ignored"));
  EXPECT_NO_THROW(HGP_INVARIANT(false));
  // Side effects must not run when compiled out.
  int evaluations = 0;
  auto bump = [&evaluations] {
    ++evaluations;
    return true;
  };
  HGP_PRECONDITION(bump());
  EXPECT_EQ(evaluations, 0);
}

// ------------------------------------------------------------- hierarchy

TEST(ValidateHierarchy, AcceptsWellFormedHierarchies) {
  EXPECT_NO_THROW(validate_hierarchy(Hierarchy({2, 3}, {4.0, 1.0, 0.0})));
  EXPECT_NO_THROW(validate_hierarchy(Hierarchy::kbgp(8)));
  EXPECT_NO_THROW(validate_hierarchy({2, 2, 2}, {3.0, 2.0, 1.0, 0.5}));
}

TEST(ValidateHierarchy, RejectsCorruptedLevelVectors) {
  // Empty hierarchy.
  EXPECT_THROW(validate_hierarchy({}, {1.0}), SolveError);
  // Wrong multiplier count.
  EXPECT_THROW(validate_hierarchy({2, 2}, {2.0, 1.0}), SolveError);
  // Zero fan-out.
  EXPECT_THROW(validate_hierarchy({2, 0}, {2.0, 1.0, 0.0}), SolveError);
  // Increasing multipliers.
  EXPECT_THROW(validate_hierarchy({2, 2}, {1.0, 2.0, 0.0}), SolveError);
  // Negative multiplier.
  EXPECT_THROW(validate_hierarchy({2}, {1.0, -0.5}), SolveError);
}

TEST(ValidateHierarchy, ViolationsCarryInternalStatus) {
  try {
    validate_hierarchy({2, 2}, {1.0, 2.0, 0.0});
    FAIL() << "corrupted hierarchy accepted";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInternal);
  }
}

// ------------------------------------------------------------- placement

Graph placement_workload() {
  Rng rng(17);
  Graph g = gen::grid2d(2, 4);
  gen::set_uniform_demands(g, 0.5);
  return g;
}

TEST(ValidatePlacement, AcceptsStructurallySoundPlacements) {
  const Graph g = placement_workload();
  const Hierarchy h({2, 2}, {2.0, 1.0, 0.0});
  Placement p;
  // 8 vertices of demand 0.5 over 4 leaves: two per leaf, exactly full.
  p.leaf_of = {0, 0, 1, 1, 2, 2, 3, 3};
  EXPECT_NO_THROW(validate_placement(g, h, p));
  EXPECT_NO_THROW(
      validate_placement(g, h, p, PlacementCheck::kFeasible));
}

TEST(ValidatePlacement, RejectsWrongSizeAndRange) {
  const Graph g = placement_workload();
  const Hierarchy h({2, 2}, {2.0, 1.0, 0.0});
  Placement short_p;
  short_p.leaf_of = {0, 1, 2};
  EXPECT_THROW(validate_placement(g, h, short_p), CheckError);
  Placement out_of_range;
  out_of_range.leaf_of = {0, 0, 1, 1, 2, 2, 3, 4};  // leaf 4 of 4
  EXPECT_THROW(validate_placement(g, h, out_of_range), CheckError);
  Placement negative;
  negative.leaf_of = {0, 0, 1, 1, 2, 2, 3, -1};
  EXPECT_THROW(validate_placement(g, h, negative), CheckError);
}

TEST(ValidatePlacement, FeasibleModeEnforcesEq1LeafCapacity) {
  const Graph g = placement_workload();
  const Hierarchy h({2, 2}, {2.0, 1.0, 0.0});
  Placement overloaded;
  // Three 0.5-demand tasks on leaf 0: structurally fine, 1.5 > capacity 1.
  overloaded.leaf_of = {0, 0, 0, 1, 2, 2, 3, 3};
  EXPECT_NO_THROW(validate_placement(g, h, overloaded));
  EXPECT_THROW(
      validate_placement(g, h, overloaded, PlacementCheck::kFeasible),
      CheckError);
  // A generous tolerance turns the same placement acceptable.
  EXPECT_NO_THROW(
      validate_placement(g, h, overloaded, PlacementCheck::kFeasible, 0.75));
}

// ------------------------------------------------------------- signature

SignatureSpace small_space() {
  ScaledDemands scaled;
  scaled.units_per_capacity = 4;
  scaled.capacity = {48, 16, 4};
  scaled.total = 40;
  return SignatureSpace(scaled, 2);
}

TEST(ValidateSignature, AcceptsEveryIdTheSpaceInterns) {
  const SignatureSpace space = small_space();
  EXPECT_NO_THROW(validate_signature(space, space.zero_id()));
  EXPECT_NO_THROW(validate_signature(space, space.uniform_id(3)));
  for (std::size_t id = 0; id < space.size(); ++id) {
    if (space.present(id) >= space.support(id)) {
      EXPECT_NO_THROW(validate_signature(space, id)) << "id " << id;
    }
  }
}

TEST(ValidateSignature, RejectsOutOfRangeIds) {
  const SignatureSpace space = small_space();
  EXPECT_THROW(validate_signature(space, space.size()), SolveError);
  EXPECT_THROW(validate_signature(space, SignatureSpace::npos), SolveError);
}

TEST(ValidateSignature, RejectsPresenceShallowerThanSupport) {
  const SignatureSpace space = small_space();
  // uniform_id(2) has D = (2,2): support 2, presence 2.  The id arithmetic
  // interleaves presence in the low digits, so id-1 is the same tuple with
  // presence 1 < support — exactly the corruption Definition 8 forbids.
  const std::size_t good = space.uniform_id(2);
  ASSERT_NE(good, SignatureSpace::npos);
  ASSERT_EQ(space.present(good), 2);
  const std::size_t corrupted = good - 1;
  ASSERT_EQ(space.support(corrupted), 2);
  ASSERT_LT(space.present(corrupted), 2);
  EXPECT_THROW(validate_signature(space, corrupted), SolveError);
}

TEST(ValidateSignature, RejectsCorruptedTuples) {
  const SignatureSpace space = small_space();
  // Wrong arity.
  EXPECT_THROW(validate_signature(space, Signature{1}, 1), SolveError);
  // Monotonicity violated (D rises toward the leaves).
  EXPECT_THROW(validate_signature(space, Signature{1, 3}, 2), SolveError);
  // Capacity bound exceeded (level-2 bound is 4).
  EXPECT_THROW(validate_signature(space, Signature{9, 9}, 2), SolveError);
  // Negative demand.
  EXPECT_THROW(validate_signature(space, Signature{2, -1}, 2), SolveError);
  // Presence outside [0, h].
  EXPECT_THROW(validate_signature(space, Signature{2, 1}, 3), SolveError);
  EXPECT_THROW(validate_signature(space, Signature{2, 1}, -1), SolveError);
}

TEST(ValidateSignature, IdOfAndValidateAgreeOnValidity) {
  const SignatureSpace space = small_space();
  const Signature good{3, 2};
  EXPECT_NE(space.id_of(good, 2), SignatureSpace::npos);
  EXPECT_NO_THROW(validate_signature(space, good, 2));
  const Signature bad{2, 3};
  EXPECT_EQ(space.id_of(bad, 2), SignatureSpace::npos);
  EXPECT_THROW(validate_signature(space, bad, 2), SolveError);
}

TEST(ValidateSignature, MergePreconditionsRejectGarbageWhenEnabled) {
  if (!contracts_enabled()) {
    GTEST_SKIP() << "contracts compiled out in this build";
  }
  const SignatureSpace space = small_space();
  EXPECT_THROW(space.merge(space.size(), 1, space.zero_id(), 1, 2),
               SolveError);
  EXPECT_THROW(space.merge(space.zero_id(), -1, space.zero_id(), 1, 2),
               SolveError);
  EXPECT_THROW(space.lift(space.zero_id(), 99, 2), SolveError);
}

TEST(ValidateSignature, ConsistentMergeResultsAreValidSignatures) {
  const SignatureSpace space = small_space();
  const std::size_t a = space.uniform_id(2);
  const std::size_t b = space.uniform_id(1);
  ASSERT_NE(a, SignatureSpace::npos);
  ASSERT_NE(b, SignatureSpace::npos);
  const std::size_t m = space.merge(a, 2, b, 1, 2);
  ASSERT_NE(m, SignatureSpace::npos);
  EXPECT_NO_THROW(validate_signature(space, m));
  // The merge sums the kept prefixes: level 1 = 2+1, level 2 = 2+0.
  EXPECT_EQ(space.level(m, 1), 3);
  EXPECT_EQ(space.level(m, 2), 2);
}

}  // namespace
}  // namespace hgp
