// Durable snapshot tests: container round-trips, the corruption-rejection
// matrix, crash-safe write semantics under injected I/O faults, and
// checkpoint spill/reload (src/io/snapshot.hpp, docs/FORMATS.md).
//
// The random-corruption hammer lives in tools/hgp_snapfuzz; these tests pin
// the deterministic corners: every rejection names kDataLoss, round-trips
// are bit-faithful, and a failed write never replaces the destination.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "decomp/builder.hpp"
#include "decomp/cutter.hpp"
#include "graph/fingerprint.hpp"
#include "graph/generators.hpp"
#include "io/snapshot.hpp"
#include "runtime/checkpoint.hpp"
#include "util/fault_injector.hpp"
#include "util/prng.hpp"

namespace hgp {
namespace {

Graph sample_graph(std::uint64_t seed = 5, Vertex n = 20) {
  Rng rng(seed);
  Graph g = gen::planted_partition(n, 4, 0.7, 0.1, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / static_cast<double>(n));
  return g;
}

std::string temp_path(const char* stem) {
  return testing::TempDir() + stem + "." +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed());
}

std::vector<std::byte> read_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::vector<char> raw((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
  std::vector<std::byte> out(raw.size());
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

void write_bytes(const std::string& path, const std::vector<std::byte>& b) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(reinterpret_cast<const char*>(b.data()),
           static_cast<std::streamsize>(b.size()));
}

/// Asserts `fn` throws SolveError{kDataLoss} (the one corruption contract
/// every reader path must keep).
template <typename Fn>
void expect_data_loss(Fn&& fn) {
  try {
    fn();
    FAIL() << "expected SolveError{kDataLoss}";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kDataLoss) << e.what();
  }
}

std::vector<std::byte> graph_image(const Graph& g) {
  io::SnapshotWriter w;
  io::append_graph_sections(w, g);
  return w.serialize();
}

Graph parse_graph_image(const std::vector<std::byte>& image) {
  io::SnapshotReader r{std::vector<std::byte>(image)};
  io::SectionCursor c;
  return io::read_graph_sections(r, c);
}

// ---------------------------------------------------------------------------
// Container primitives

TEST(SnapshotContainer, Crc32MatchesKnownVectors) {
  // The IEEE 802.3 reference value for "123456789".
  EXPECT_EQ(io::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(io::crc32("", 0), 0u);
  // Chaining: crc(a ++ b) == crc(b, seed = crc(a)).
  const std::uint32_t whole = io::crc32("123456789", 9);
  const std::uint32_t chained = io::crc32("456789", 6, io::crc32("123", 3));
  EXPECT_EQ(whole, chained);
}

TEST(SnapshotContainer, SectionRoundTripAndTypeConfusionGuard) {
  io::PayloadBuilder pb;
  const std::vector<std::int32_t> values{1, -2, 3};
  pb.append_span<std::int32_t>(values);

  io::SnapshotWriter w;
  w.add_section(io::SectionType::kGraphEdges, pb);
  w.add_section(io::SectionType::kHierarchy, io::PayloadBuilder{});
  io::SnapshotReader r{w.serialize()};
  ASSERT_EQ(r.section_count(), 2u);

  io::SectionView v = r.expect(0, io::SectionType::kGraphEdges);
  EXPECT_EQ(v.read_span<std::int32_t>(3), values);
  v.expect_exhausted();

  // Asking for the wrong type is kDataLoss, not a silent reinterpret.
  expect_data_loss([&] { r.expect(0, io::SectionType::kHierarchy); });
  // Over-reads and trailing bytes are caught by the cursor.
  expect_data_loss([&] {
    io::SectionView s = r.expect(0, io::SectionType::kGraphEdges);
    s.read_span<std::int32_t>(4);
  });
  expect_data_loss([&] {
    io::SectionView s = r.expect(0, io::SectionType::kGraphEdges);
    s.read_span<std::int32_t>(2);
    s.expect_exhausted();
  });
}

// ---------------------------------------------------------------------------
// Rejection matrix (deterministic corners; hgp_snapfuzz covers the rest)

TEST(SnapshotReject, BadMagic) {
  std::vector<std::byte> img = graph_image(sample_graph());
  img[0] = std::byte{'X'};
  expect_data_loss([&] { parse_graph_image(img); });
}

TEST(SnapshotReject, FutureFormatVersion) {
  std::vector<std::byte> img = graph_image(sample_graph());
  const std::uint32_t future = io::kSnapshotVersion + 1;
  std::memcpy(img.data() + 8, &future, sizeof(future));
  // Container CRCs repaired: only the version gate can fire.
  const std::uint32_t crc = io::crc32(img.data(), img.size() - 4);
  std::memcpy(img.data() + img.size() - 4, &crc, sizeof(crc));
  expect_data_loss([&] { parse_graph_image(img); });
}

TEST(SnapshotReject, EveryTruncationLength) {
  const std::vector<std::byte> img = graph_image(sample_graph(5, 8));
  for (std::size_t len = 0; len < img.size(); ++len) {
    std::vector<std::byte> cut(img.begin(),
                               img.begin() + static_cast<std::ptrdiff_t>(len));
    expect_data_loss([&] { parse_graph_image(cut); });
  }
}

TEST(SnapshotReject, TrailingGarbage) {
  std::vector<std::byte> img = graph_image(sample_graph());
  img.push_back(std::byte{0});
  expect_data_loss([&] { parse_graph_image(img); });
}

TEST(SnapshotReject, EverySingleBitFlip) {
  // The file CRC covers every byte, so each single-bit flip anywhere in a
  // small image must be rejected.
  const std::vector<std::byte> img = graph_image(sample_graph(5, 6));
  for (std::size_t at = 0; at < img.size(); ++at) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::byte> flipped = img;
      flipped[at] ^= static_cast<std::byte>(1u << bit);
      expect_data_loss([&] { parse_graph_image(flipped); });
    }
  }
}

TEST(SnapshotReject, SemanticCorruptionBehindValidCrcs) {
  // Stomp the fingerprint field inside the graph-header payload, then
  // repair both CRCs: the container is self-consistent and only the
  // fingerprint re-verification can catch it.
  std::vector<std::byte> img = graph_image(sample_graph());
  const std::size_t payload = 16 + 16;  // file header + section header
  img[payload] ^= std::byte{0x01};      // fingerprint low byte
  std::uint64_t size = 0;
  std::memcpy(&size, img.data() + 16 + 8, sizeof(size));
  const std::uint32_t scrc =
      io::crc32(img.data() + payload, static_cast<std::size_t>(size));
  std::memcpy(img.data() + 16 + 4, &scrc, sizeof(scrc));
  const std::uint32_t fcrc = io::crc32(img.data(), img.size() - 4);
  std::memcpy(img.data() + img.size() - 4, &fcrc, sizeof(fcrc));
  expect_data_loss([&] { parse_graph_image(img); });
}

TEST(SnapshotReject, MissingFileIsDataLoss) {
  expect_data_loss(
      [] { io::load_graph_snapshot("/nonexistent/hgp-snapshot.bin"); });
}

// ---------------------------------------------------------------------------
// Typed round-trips

TEST(SnapshotGraph, RoundTripIsContentIdentical) {
  const Graph g = sample_graph();
  const std::string path = temp_path("graph.snap");
  ASSERT_TRUE(io::save_graph_snapshot(g, path).ok());
  const Graph back = io::load_graph_snapshot(path);
  EXPECT_EQ(graph_fingerprint(back), graph_fingerprint(g));
  EXPECT_EQ(back.vertex_count(), g.vertex_count());
  EXPECT_EQ(back.edge_count(), g.edge_count());
  EXPECT_DOUBLE_EQ(back.total_demand(), g.total_demand());
  std::filesystem::remove(path);
}

TEST(SnapshotGraph, RoundTripWithoutDemands) {
  Rng rng(3);
  const Graph g = gen::erdos_renyi(12, 0.4, rng);
  const std::string path = temp_path("graph-nodem.snap");
  ASSERT_TRUE(io::save_graph_snapshot(g, path).ok());
  const Graph back = io::load_graph_snapshot(path);
  EXPECT_EQ(graph_fingerprint(back), graph_fingerprint(g));
  EXPECT_FALSE(back.has_demands());
  std::filesystem::remove(path);
}

TEST(SnapshotHierarchy, RoundTripPreservesShape) {
  const Hierarchy h({2, 3, 2}, {9.0, 3.0, 1.0, 0.0});
  const std::string path = temp_path("hier.snap");
  ASSERT_TRUE(io::save_hierarchy_snapshot(h, path).ok());
  const Hierarchy back = io::load_hierarchy_snapshot(path);
  EXPECT_EQ(back.to_string(), h.to_string());
  std::filesystem::remove(path);
}

TEST(SnapshotForest, RoundTripPreservesEveryTree) {
  const Graph g = sample_graph();
  const FmCutter cutter;
  const std::vector<DecompTree> forest =
      build_decomposition_forest(g, 3, 17, cutter);

  io::ForestSnapshotMeta meta;
  meta.graph_fingerprint = graph_fingerprint(g);
  meta.seed = 17;
  meta.num_trees = 3;
  meta.cutter = cutter.name();
  const std::string path = temp_path("forest.snap");
  ASSERT_TRUE(io::save_forest_snapshot(meta, g, forest, path).ok());

  const io::ForestSnapshot snap = io::load_forest_snapshot(path);
  EXPECT_EQ(snap.meta.graph_fingerprint, meta.graph_fingerprint);
  EXPECT_EQ(snap.meta.seed, meta.seed);
  EXPECT_EQ(snap.meta.num_trees, meta.num_trees);
  EXPECT_EQ(snap.meta.cutter, meta.cutter);
  EXPECT_EQ(graph_fingerprint(snap.graph), graph_fingerprint(g));
  ASSERT_EQ(snap.forest.size(), forest.size());
  for (std::size_t i = 0; i < forest.size(); ++i) {
    const Tree& a = forest[i].tree();
    const Tree& b = snap.forest[i].tree();
    ASSERT_EQ(b.node_count(), a.node_count());
    EXPECT_EQ(b.root(), a.root());
    for (Vertex v = 0; v < a.node_count(); ++v) {
      EXPECT_EQ(b.parent(v), a.parent(v));
      if (v != a.root()) {
        EXPECT_DOUBLE_EQ(b.parent_weight(v), a.parent_weight(v));
        EXPECT_EQ(b.parent_edge_infinite(v), a.parent_edge_infinite(v));
      }
      if (a.is_leaf(v)) {
        EXPECT_EQ(snap.forest[i].vertex_of_leaf(v),
                  forest[i].vertex_of_leaf(v));
        EXPECT_DOUBLE_EQ(b.demand(v), a.demand(v));
      }
    }
  }
  std::filesystem::remove(path);
}

TEST(SnapshotForest, RejectsForestOfDifferentGraph) {
  const Graph g = sample_graph(5);
  const Graph other = sample_graph(6);
  const FmCutter cutter;
  const std::vector<DecompTree> forest =
      build_decomposition_forest(g, 2, 1, cutter);

  io::SnapshotWriter w;
  io::append_graph_sections(w, g);
  io::ForestSnapshotMeta meta;
  meta.graph_fingerprint = graph_fingerprint(g);
  meta.num_trees = 2;
  io::append_forest_sections(w, meta, forest);
  io::SnapshotReader r{w.serialize()};
  io::SectionCursor c;
  (void)io::read_graph_sections(r, c);
  // Same bytes, wrong graph: the stored fingerprint must not match.
  expect_data_loss(
      [&] { io::read_forest_sections(r, c, other, nullptr); });
}

// ---------------------------------------------------------------------------
// Checkpoint spills

CheckpointKey sample_key(const Graph& g) {
  CheckpointKey key;
  key.graph_fingerprint = graph_fingerprint(g);
  key.seed = 9;
  key.num_trees = 2;
  key.epsilon = 0.5;
  return key;
}

void fill_checkpoint(SolveCheckpoint& ck, const Graph& g) {
  ck.bind(sample_key(g));
  for (int t = 0; t < 2; ++t) {
    CheckpointedTree tree;
    tree.placement.leaf_of.assign(
        static_cast<std::size_t>(g.vertex_count()), static_cast<LeafId>(t));
    tree.cost = 2.25 * (t + 1);
    ck.record(t, std::move(tree));
  }
}

TEST(SnapshotCheckpoint, SpillRoundTripIsExact) {
  const Graph g = sample_graph();
  SolveCheckpoint ck;
  fill_checkpoint(ck, g);
  const std::string path = temp_path("ckpt.snap");
  ASSERT_TRUE(ck.save(path).ok());

  SolveCheckpoint back;
  ASSERT_TRUE(back.load(path).ok());
  EXPECT_TRUE(back.bound());
  EXPECT_EQ(back.key(), sample_key(g));
  EXPECT_EQ(back.size(), 2u);
  for (int t = 0; t < 2; ++t) {
    CheckpointedTree a, b;
    ASSERT_TRUE(ck.lookup(t, &a));
    ASSERT_TRUE(back.lookup(t, &b));
    EXPECT_EQ(b.placement.leaf_of, a.placement.leaf_of);
    EXPECT_DOUBLE_EQ(b.cost, a.cost);
  }
  // Re-binding the same key must keep the loaded entries...
  back.bind(sample_key(g));
  EXPECT_EQ(back.size(), 2u);
  // ...and a different key must clear them (stale spill defense).
  CheckpointKey other = sample_key(g);
  other.seed ^= 1;
  back.bind(other);
  EXPECT_EQ(back.size(), 0u);
  std::filesystem::remove(path);
}

TEST(SnapshotCheckpoint, CorruptSpillLoadsAsDataLossAndLeavesEmpty) {
  const Graph g = sample_graph();
  const std::string path = temp_path("ckpt-corrupt.snap");
  SolveCheckpoint ck;
  fill_checkpoint(ck, g);
  ASSERT_TRUE(ck.save(path).ok());
  std::vector<std::byte> img = read_bytes(path);
  img[img.size() / 2] ^= std::byte{0x10};
  write_bytes(path, img);

  SolveCheckpoint back;
  const Status s = back.load(path);
  EXPECT_EQ(s.code, StatusCode::kDataLoss) << s.to_string();
  EXPECT_FALSE(back.bound());
  EXPECT_EQ(back.size(), 0u);
  std::filesystem::remove(path);
}

TEST(SnapshotCheckpoint, MissingSpillIsDataLossNotCrash) {
  SolveCheckpoint ck;
  const Status s = ck.load(testing::TempDir() + "no-such-spill.ckpt");
  EXPECT_EQ(s.code, StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// Crash-safe writes under injected I/O faults

FaultInjector::Fault io_fault(FaultInjector::Action action) {
  FaultInjector::Fault f;
  f.action = action;
  return f;
}

TEST(SnapshotWrite, ShortWriteFailsWithoutReplacingDestination) {
  const Graph g = sample_graph();
  const std::string path = temp_path("write-short.snap");
  ASSERT_TRUE(io::save_graph_snapshot(g, path).ok());
  const std::vector<std::byte> before = read_bytes(path);

  {
    FaultScope fault("snapshot.write", 0,
                     io_fault(FaultInjector::Action::kIoShortWrite));
    const Status s = io::save_graph_snapshot(g, path);
    EXPECT_FALSE(s.ok());
  }
  // The destination still holds the previous good bytes; no temp litter.
  EXPECT_EQ(read_bytes(path), before);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_EQ(graph_fingerprint(io::load_graph_snapshot(path)),
            graph_fingerprint(g));
  std::filesystem::remove(path);
}

TEST(SnapshotWrite, EnospcIsResourceExhausted) {
  const Graph g = sample_graph();
  const std::string path = temp_path("write-enospc.snap");
  FaultScope fault("snapshot.write", 0,
                   io_fault(FaultInjector::Action::kIoEnospc));
  const Status s = io::save_graph_snapshot(g, path);
  EXPECT_EQ(s.code, StatusCode::kResourceExhausted) << s.to_string();
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(SnapshotWrite, FsyncFailureIsReportedAndLeavesNoFile) {
  const Graph g = sample_graph();
  const std::string path = temp_path("write-fsync.snap");
  FaultScope fault("snapshot.fsync", 0,
                   io_fault(FaultInjector::Action::kIoFsyncFail));
  const Status s = io::save_graph_snapshot(g, path);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(SnapshotWrite, TornRenameLeavesRejectableFile) {
  // The one failure mode that corrupts the destination by design (it
  // models a crash mid-rename): the loader must reject what it left.
  const Graph g = sample_graph();
  const std::string path = temp_path("write-torn.snap");
  FaultScope fault("snapshot.rename", 0,
                   io_fault(FaultInjector::Action::kIoTornRename));
  const Status s = io::save_graph_snapshot(g, path);
  EXPECT_FALSE(s.ok());
  ASSERT_TRUE(std::filesystem::exists(path));
  expect_data_loss([&] { io::load_graph_snapshot(path); });
  std::filesystem::remove(path);
}

TEST(SnapshotWrite, SuccessfulWriteLeavesNoTempFile) {
  const Graph g = sample_graph();
  const std::string path = temp_path("write-clean.snap");
  ASSERT_TRUE(io::save_graph_snapshot(g, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace hgp
