// Semantics of the annotated sync wrappers (src/util/sync.hpp): RAII
// release on every exit path including exception unwind, reader/writer
// exclusion on SharedMutex, and the CondVar wait/notify contract.  The
// whole file runs under the TSan preset, so a wrapper that dropped or
// doubled an underlying lock operation would also surface dynamically.
#include "util/sync.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hgp {
namespace {

// Cross-thread try_lock probe: whether the mutex is currently free, judged
// from a thread that does not hold it (locking the same std::mutex twice
// from one thread is UB, so the probe must never run on the holder).
bool try_lock_elsewhere(Mutex& mu) {
  bool acquired = false;
  std::thread probe([&] {
    if (mu.try_lock()) {
      acquired = true;
      mu.unlock();
    }
  });
  probe.join();
  return acquired;
}

TEST(Sync, MutexLockReleasesOnScopeExit) {
  Mutex mu;
  {
    const MutexLock lock(mu);
    EXPECT_FALSE(try_lock_elsewhere(mu));
  }
  EXPECT_TRUE(try_lock_elsewhere(mu));
}

TEST(Sync, MutexLockReleasesOnExceptionUnwind) {
  Mutex mu;
  try {
    const MutexLock lock(mu);
    throw std::runtime_error("unwind through the lock");
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(try_lock_elsewhere(mu));
}

TEST(Sync, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.lock();
  EXPECT_FALSE(try_lock_elsewhere(mu));
  mu.unlock();
  EXPECT_TRUE(try_lock_elsewhere(mu));
}

TEST(Sync, ReadersShareWritersExclude) {
  SharedMutex mu;
  {
    const ReaderLock r1(mu);
    // A second reader coexists with the first.
    EXPECT_TRUE(mu.try_lock_shared());
    mu.unlock_shared();
    // A writer does not.
    EXPECT_FALSE(mu.try_lock());
  }
  {
    const WriterLock w(mu);
    EXPECT_FALSE(mu.try_lock_shared());
    EXPECT_FALSE(mu.try_lock());
  }
  // Both sides released on scope exit.
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(Sync, WriterLockReleasesOnExceptionUnwind) {
  SharedMutex mu;
  try {
    const WriterLock lock(mu);
    throw std::runtime_error("unwind through the writer lock");
  } catch (const std::runtime_error&) {
  }
  EXPECT_TRUE(mu.try_lock_shared());
  mu.unlock_shared();
}

TEST(Sync, CondVarPredicateWait) {
  Mutex mu;
  CondVar cv;
  bool ready = false;

  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    EXPECT_TRUE(ready);
  });

  // The predicate store under the mutex + notify after unlock is the
  // documented lost-wakeup discipline; this is its executable form.
  {
    const MutexLock lock(mu);
    ready = true;
  }
  cv.notify_one();
  waiter.join();
}

TEST(Sync, CondVarWaitForTimesOut) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto start = std::chrono::steady_clock::now();
  // Nobody notifies: the wait must report timeout and re-hold the mutex.
  while (cv.wait_for_ms(mu, 5)) {
    // Spurious wakeups report "notified"; waiting again is the standard
    // predicate-loop response.  The deadline below bounds the loop.
    if (std::chrono::steady_clock::now() - start > std::chrono::seconds(5)) {
      FAIL() << "wait_for_ms never timed out";
    }
  }
}

TEST(Sync, CondVarWaitForSeesNotification) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  bool observed = false;

  std::thread waiter([&] {
    MutexLock lock(mu);
    while (!ready) {
      // Generous timeout: the assertion is that the notify arrives well
      // before it, not that timing is exact.
      cv.wait_for_ms(mu, 10000);
    }
    observed = true;
  });

  {
    const MutexLock lock(mu);
    ready = true;
  }
  cv.notify_all();
  waiter.join();
  EXPECT_TRUE(observed);
}

TEST(Sync, MutexExcludesConcurrentIncrements) {
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  Mutex mu;
  long counter = 0;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(Sync, SharedMutexWritersAreSerialized) {
  constexpr int kThreads = 4;
  constexpr int kIters = 5000;
  SharedMutex mu;
  long counter = 0;
  std::atomic<long> reader_sum{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads * 2);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const WriterLock lock(mu);
        ++counter;
      }
    });
    threads.emplace_back([&] {
      long local = 0;
      for (int i = 0; i < kIters; ++i) {
        const ReaderLock lock(mu);
        local += counter;  // torn reads here would be a TSan report
      }
      reader_sum.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
  EXPECT_GE(reader_sum.load(std::memory_order_relaxed), 0);
}

}  // namespace
}  // namespace hgp
