// Golden regression corpus: instance specs shared by the refresh tool
// (tools/hgp_golden.cpp) and the regression test (tests/test_golden.cpp).
//
// Each spec deterministically generates a small instance from one of the
// standard workload families.  The committed corpus (tests/golden/) holds
// the instances serialized as METIS files plus their expected end-to-end
// solver costs in expected.tsv.  Costs are computed from the RE-READ
// files, so METIS demand quantization (1/1000) is baked into the expected
// values and the test is exact file-in → cost-out.
//
// The solve is the fully deterministic canonical configuration: default
// spectral+FM cutter, two trees, fixed seed, sequential (no pool).  Any
// change that shifts a cost — cutter tweaks, DP changes, demand-rounding
// edits — must consciously refresh the corpus with the tool.
#pragma once

#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "hierarchy/hierarchy.hpp"
#include "runtime/solver.hpp"

namespace hgp::golden {

struct Spec {
  std::string name;       ///< file stem: tests/golden/<name>.graph
  std::string hierarchy;  ///< key for hierarchy_by_name()
  Graph (*build)();       ///< deterministic generator
};

/// The named hierarchies instances solve against (kept tiny so golden
/// solves stay fast).
inline Hierarchy hierarchy_by_name(const std::string& name) {
  if (name == "h1") return Hierarchy({4}, {2.0, 0.0});
  if (name == "h2") return Hierarchy({2, 2}, {4.0, 1.0, 0.0});
  if (name == "h3") return Hierarchy({2, 2, 2}, {6.0, 3.0, 1.0, 0.0});
  throw SolveError(StatusCode::kInvalidInput,
                   "unknown golden hierarchy: " + name);
}

/// The canonical fully-deterministic solve configuration.  The fixed
/// demand resolution (units_override) keeps the height-3 instances' DP
/// state spaces test-sized; golden tests gate on drift, not on accuracy.
inline SolverOptions canonical_options() {
  SolverOptions opt;
  opt.num_trees = 2;
  opt.seed = 7;
  opt.units_override = 6;
  return opt;
}

inline const std::vector<Spec>& corpus() {
  static const std::vector<Spec> specs = {
      {"planted16", "h2",
       [] {
         Rng rng(101);
         Graph g = gen::planted_partition(16, 4, 0.8, 0.1, rng,
                                          gen::WeightRange{2.0, 6.0},
                                          gen::WeightRange{1.0, 2.0});
         gen::set_uniform_demands(g, 3.2 / 16);
         return g;
       }},
      {"planted32", "h2",
       [] {
         Rng rng(102);
         Graph g = gen::planted_partition(32, 4, 0.7, 0.05, rng,
                                          gen::WeightRange{2.0, 6.0},
                                          gen::WeightRange{1.0, 2.0});
         gen::set_uniform_demands(g, 3.2 / 32);
         return g;
       }},
      {"grid4x4", "h2",
       [] {
         Graph g = gen::grid2d(4, 4);
         gen::set_uniform_demands(g, 3.2 / 16);
         return g;
       }},
      {"grid6x5", "h2",
       [] {
         Rng rng(103);
         Graph g = gen::grid2d(6, 5, gen::WeightRange{1.0, 4.0}, &rng);
         gen::set_random_demands(g, rng, 0.05, 0.15);
         return g;
       }},
      {"tree24", "h2",
       [] {
         Rng rng(104);
         Graph g = gen::random_tree(24, rng, gen::WeightRange{1.0, 9.0});
         gen::set_uniform_demands(g, 3.2 / 24);
         return g;
       }},
      {"tree40", "h3",
       [] {
         Rng rng(105);
         Graph g = gen::random_tree(40, rng, gen::WeightRange{1.0, 9.0});
         gen::set_uniform_demands(g, 6.4 / 40);
         return g;
       }},
      {"ba24", "h2",
       [] {
         Rng rng(106);
         Graph g = gen::barabasi_albert(24, 2, rng,
                                        gen::WeightRange{1.0, 3.0});
         gen::set_uniform_demands(g, 3.2 / 24);
         return g;
       }},
      {"ring16", "h1",
       [] {
         Graph g = gen::ring(16);
         gen::set_uniform_demands(g, 3.2 / 16);
         return g;
       }},
      {"er24", "h2",
       [] {
         Rng rng(107);
         Graph g = gen::erdos_renyi(24, 0.25, rng,
                                    gen::WeightRange{1.0, 5.0});
         gen::set_uniform_demands(g, 3.2 / 24);
         return g;
       }},
      {"stream", "h2",
       [] {
         Rng rng(108);
         gen::StreamDagOptions sopt;
         sopt.sources = 2;
         sopt.sinks = 2;
         sopt.stages = 2;
         sopt.stage_width = 5;
         sopt.demand_lo = 0.05;
         sopt.demand_hi = 0.2;
         return gen::stream_dag(sopt, rng);
       }},
      {"complete12", "h1",
       [] {
         Rng rng(109);
         Graph g = gen::complete(12, gen::WeightRange{1.0, 4.0}, &rng);
         gen::set_uniform_demands(g, 3.2 / 12);
         return g;
       }},
      {"grid3d", "h3",
       [] {
         Graph g = gen::grid3d(3, 3, 3);
         gen::set_uniform_demands(g, 6.4 / 27);
         return g;
       }},
  };
  return specs;
}

}  // namespace hgp::golden
