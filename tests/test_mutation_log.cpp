// Property / metamorphic tests of the MutationLog (graph/mutation_log.hpp)
// and its consumers:
//
//   * apply-then-undo is the identity: after append_undo_all() the
//     materialized graph has the BASE graph's content fingerprint, on the
//     base stable-id assignment;
//   * compaction is invisible: log.compacted() materializes to the same
//     graph fingerprint as the original log;
//   * churn schedules are replayable: identical seeds draw op-identical
//     logs (the property the differential suite's "failing seed replays
//     the schedule" contract rests on);
//   * the ForestCache keys by content, so a mutated graph can never be
//     served the pre-mutation forest.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "churn_schedule.hpp"
#include "decomp/builder.hpp"
#include "decomp/cutter.hpp"
#include "graph/fingerprint.hpp"
#include "graph/generators.hpp"
#include "graph/mutation_log.hpp"
#include "runtime/forest_cache.hpp"
#include "util/prng.hpp"

namespace hgp {
namespace {

Graph make_base(std::uint64_t seed) {
  Rng rng(seed);
  gen::StreamDagOptions sopt;
  sopt.sources = 3;
  sopt.sinks = 2;
  sopt.stages = 2;
  sopt.stage_width = 5;
  return gen::stream_dag(sopt, rng);
}

gen::ChurnOptions heavy_churn() {
  gen::ChurnOptions copt;
  copt.ops = 24;
  copt.min_live = 3;
  return copt;
}

TEST(MutationLog, ApplyThenUndoRestoresBaseFingerprint) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const Graph base = make_base(seed);
    const std::uint64_t base_fp = graph_fingerprint(base);

    MutationLog log(base);
    Rng rng(SplitMix64(seed ^ 0x756e646full).next());
    gen::churn(log, heavy_churn(), rng);
    ASSERT_FALSE(log.empty());

    log.append_undo_all();

    // Live state equals the base state on the base stable ids.
    ASSERT_EQ(log.live_vertex_count(), base.vertex_count());
    const MutationLog::Materialized mat = log.materialize();
    EXPECT_EQ(graph_fingerprint(mat.graph), base_fp);
    for (Vertex v = 0; v < base.vertex_count(); ++v) {
      EXPECT_EQ(mat.compact_of[static_cast<std::size_t>(v)], v);
    }
    // The net delta vs the base graph is empty.
    EXPECT_TRUE(log.edge_deltas().empty());
    EXPECT_TRUE(log.touched().empty());
    // And compaction of a net no-op log is the empty log.
    EXPECT_TRUE(log.compacted().empty());
  }
}

TEST(MutationLog, CompactionPreservesMaterializedGraph) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const Graph base = make_base(seed);

    MutationLog log(base);
    Rng rng(SplitMix64(seed ^ 0x636f6d70ull).next());
    gen::churn(log, heavy_churn(), rng);
    ASSERT_FALSE(log.empty());

    const MutationLog compact = log.compacted();
    EXPECT_LE(compact.size(), log.size());
    ASSERT_EQ(compact.live_vertex_count(), log.live_vertex_count());
    EXPECT_EQ(graph_fingerprint(compact.materialize().graph),
              graph_fingerprint(log.materialize().graph));
  }
}

TEST(MutationLog, IdenticalSeedsReplayIdenticalSchedules) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed=" << seed);
    const testchurn::ChurnInstance inst = testchurn::make_churn_instance(seed);

    MutationLog a(*inst.graph);
    MutationLog b(*inst.graph);
    testchurn::apply_schedule(a, inst);
    testchurn::apply_schedule(b, inst);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      const Mutation& ma = a.ops()[i];
      const Mutation& mb = b.ops()[i];
      ASSERT_EQ(static_cast<int>(ma.kind), static_cast<int>(mb.kind)) << i;
      ASSERT_EQ(ma.u, mb.u) << i;
      ASSERT_EQ(ma.v, mb.v) << i;
      ASSERT_EQ(ma.value, mb.value) << i;
      ASSERT_EQ(ma.prev, mb.prev) << i;
    }
    EXPECT_EQ(graph_fingerprint(a.materialize().graph),
              graph_fingerprint(b.materialize().graph));
  }
}

TEST(MutationLog, DistinctSeedsDiverge) {
  // Not a hard guarantee per-seed, but across 10 pairs at least one op
  // stream must differ — otherwise the generator is ignoring its RNG.
  const Graph base = make_base(3);
  int different = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    MutationLog a(base);
    MutationLog b(base);
    Rng ra(seed), rb(seed + 1000);
    gen::churn(a, heavy_churn(), ra);
    gen::churn(b, heavy_churn(), rb);
    if (a.size() != b.size()) {
      ++different;
      continue;
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
      const Mutation& ma = a.ops()[i];
      const Mutation& mb = b.ops()[i];
      if (ma.kind != mb.kind || ma.u != mb.u || ma.v != mb.v ||
          ma.value != mb.value) {
        ++different;
        break;
      }
    }
  }
  EXPECT_GT(different, 0);
}

TEST(MutationLog, ForestCacheNeverServesStaleForestAfterMutation) {
  const Graph base = make_base(11);
  const FmCutter cutter;
  auto forest = std::make_shared<const std::vector<DecompTree>>(
      build_decomposition_forest(base, 2, /*seed=*/5, cutter));

  ForestCache cache(/*capacity=*/4);
  ForestCacheKey key;
  key.fingerprint = graph_fingerprint(base);
  key.seed = 5;
  key.num_trees = 2;
  key.cutter = "fm";
  cache.insert(key, forest);
  ASSERT_NE(cache.find(key), nullptr);

  // Mutate: the materialized graph has a different fingerprint, so the
  // same logical lookup misses instead of serving the stale forest.
  MutationLog log(base);
  Rng rng(77);
  gen::churn(log, heavy_churn(), rng);
  ASSERT_FALSE(log.empty());
  const MutationLog::Materialized mat = log.materialize();
  ASSERT_NE(graph_fingerprint(mat.graph), graph_fingerprint(base));

  ForestCacheKey mutated = key;
  mutated.fingerprint = graph_fingerprint(mat.graph);
  EXPECT_EQ(cache.find(mutated), nullptr);

  // Undo the churn: content equality (not object identity) is what hits.
  log.append_undo_all();
  ForestCacheKey undone = key;
  undone.fingerprint = graph_fingerprint(log.materialize().graph);
  EXPECT_EQ(undone.fingerprint, key.fingerprint);
  EXPECT_NE(cache.find(undone), nullptr);
}

}  // namespace
}  // namespace hgp
