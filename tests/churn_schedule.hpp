// Seeded churn schedules over the stream_dag workload — the shared
// instance generator of the incremental-repartitioning suite.
//
// One seed deterministically derives everything: the base stream DAG, the
// hierarchy, the solver parameters (trees, rounding units) and the churn
// schedule (a gen::ChurnOptions mix plus the RNG seed that draws it).  A
// failing seed printed by tests/test_churn_differential.cpp therefore
// replays the exact instance AND the exact mutation sequence in isolation
// — the same replayability contract test_dp_differential.cpp pins for the
// DP configurations.  bench/bench_e12_churn.cpp reuses the generator so
// the E12 measurements cover the same distribution the tests pin.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "graph/generators.hpp"
#include "graph/mutation_log.hpp"
#include "hierarchy/hierarchy.hpp"
#include "runtime/incremental.hpp"
#include "util/prng.hpp"

namespace hgp::testchurn {

struct ChurnInstance {
  std::shared_ptr<const Graph> graph;
  Hierarchy hierarchy;
  /// Structural solve parameters (num_trees, epsilon, units_override,
  /// seed) the incremental session pins for its lifetime.
  IncrementalOptions opt;
  gen::ChurnOptions churn;
  /// Seed of the RNG stream that draws the schedule (distinct from the
  /// instance seed so replaying the schedule is independent of how much
  /// randomness instance construction consumed).
  std::uint64_t churn_seed = 0;
};

/// Deterministically derives one churn instance from `seed`.  Sizes are
/// kept small enough that the 200-seed differential sweep (each seed
/// solving every tree twice: incremental + from-scratch) stays in
/// test-suite time; capacities leave ~4x slack over the worst-case total
/// demand so schedules cannot drift into infeasibility.
inline ChurnInstance make_churn_instance(std::uint64_t seed) {
  Rng rng(seed * 6364136223846793005ull + 1442695040888963407ull);

  gen::StreamDagOptions sopt;
  sopt.sources = static_cast<int>(rng.next_int(2, 3));
  sopt.sinks = static_cast<int>(rng.next_int(1, 2));
  sopt.stages = static_cast<int>(rng.next_int(1, 2));
  sopt.stage_width = static_cast<int>(rng.next_int(3, 5));
  sopt.max_fanout = static_cast<int>(rng.next_int(1, 3));
  sopt.heavy_fraction = rng.next_double(0.1, 0.3);
  sopt.demand_lo = 0.03;
  sopt.demand_hi = 0.18;
  auto g = std::make_shared<const Graph>(gen::stream_dag(sopt, rng));

  // Alternate flat and two-level hierarchies; leaf counts stay well above
  // the total demand the schedule can reach.
  const bool flat = (seed % 2) == 0;
  const int height = flat ? 1 : 2;
  const int deg = flat ? static_cast<int>(rng.next_int(6, 10))
                       : static_cast<int>(rng.next_int(3, 4));
  std::vector<double> cm(static_cast<std::size_t>(height) + 1, 0.0);
  double acc = 0.0;
  for (int j = height - 1; j >= 0; --j) {
    acc += rng.next_double(0.5, 3.0);
    cm[static_cast<std::size_t>(j)] = acc;
  }
  Hierarchy h = Hierarchy::uniform(height, deg, std::move(cm));

  IncrementalOptions iopt;
  iopt.num_trees = static_cast<int>(rng.next_int(2, 3));
  iopt.epsilon = 0.25;
  // Coarse fixed rounding: the signature space, not the graph, is the DP
  // cost driver (same sizing rationale as test_dp_differential.cpp).
  iopt.units_override = static_cast<DemandUnits>(rng.next_int(2, height == 2 ? 3 : 5));
  iopt.seed = seed;

  gen::ChurnOptions copt;
  // A third of the seeds draw small, locality-friendly schedules (volume
  // and demand drift only); the rest mix in structural churn.
  if (seed % 3 == 0) {
    copt.ops = static_cast<int>(rng.next_int(2, 4));
    copt.w_add_vertex = 0;
    copt.w_remove_vertex = 0;
    copt.w_add_edge = 0;
    copt.w_remove_edge = 0;
  } else {
    copt.ops = static_cast<int>(rng.next_int(6, 20));
  }
  copt.demand_lo = 0.03;
  copt.demand_hi = 0.18;
  copt.weight = gen::WeightRange{1.0, 8.0};
  copt.min_live = 4;

  ChurnInstance inst{std::move(g), std::move(h), iopt, copt,
                     SplitMix64(seed ^ 0x63687572'6e736368ull).next()};
  return inst;
}

/// Replays the instance's schedule onto `log` (any log over any graph —
/// the draws adapt to the log's live state).
inline void apply_schedule(MutationLog& log, const ChurnInstance& inst) {
  Rng rng(inst.churn_seed);
  gen::churn(log, inst.churn, rng);
}

}  // namespace hgp::testchurn
