#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/tree.hpp"

namespace hgp {
namespace {

/// A small caterpillar: root 0 with children {1, 2}; node 1 has leaf
/// children {3, 4}; node 2 has leaf child {5}.
Tree caterpillar() {
  return Tree::from_parents({-1, 0, 0, 1, 1, 2},
                            {0, 2.0, 3.0, 1.0, 4.0, 5.0});
}

TEST(Tree, BasicTopology) {
  const Tree t = caterpillar();
  EXPECT_EQ(t.node_count(), 6);
  EXPECT_EQ(t.root(), 0);
  EXPECT_EQ(t.parent(3), 1);
  EXPECT_EQ(t.depth(5), 2);
  EXPECT_TRUE(t.is_leaf(4));
  EXPECT_FALSE(t.is_leaf(1));
  EXPECT_EQ(t.leaf_count(), 3);
  EXPECT_EQ(t.leaves(), (std::vector<Vertex>{3, 4, 5}));
}

TEST(Tree, PreorderVisitsParentsFirst) {
  const Tree t = caterpillar();
  std::vector<int> pos(6, -1);
  for (std::size_t i = 0; i < t.preorder().size(); ++i) {
    pos[static_cast<std::size_t>(t.preorder()[i])] = static_cast<int>(i);
  }
  for (Vertex v = 1; v < 6; ++v) {
    EXPECT_LT(pos[static_cast<std::size_t>(t.parent(v))],
              pos[static_cast<std::size_t>(v)]);
  }
}

TEST(Tree, MultipleRootsRejected) {
  EXPECT_THROW(Tree::from_parents({-1, -1}, {0, 0}), CheckError);
}

TEST(Tree, CycleRejected) {
  EXPECT_THROW(Tree::from_parents({-1, 2, 1}, {0, 1, 1}), CheckError);
}

TEST(Tree, LcaQueries) {
  const Tree t = caterpillar();
  EXPECT_EQ(t.lca(3, 4), 1);
  EXPECT_EQ(t.lca(3, 5), 0);
  EXPECT_EQ(t.lca(4, 4), 4);
  EXPECT_EQ(t.lca(1, 3), 1);
  EXPECT_EQ(t.lca(5, 2), 2);
}

TEST(Tree, LcaOnRandomTreesMatchesNaive) {
  Rng rng(31);
  const Graph g = gen::random_tree(60, rng);
  const Tree t = Tree::from_graph(g, 0);
  auto naive_lca = [&](Vertex u, Vertex v) {
    while (u != v) {
      if (t.depth(u) >= t.depth(v)) u = t.parent(u);
      else v = t.parent(v);
    }
    return u;
  };
  for (int q = 0; q < 200; ++q) {
    const auto u = narrow<Vertex>(rng.next_below(60));
    const auto v = narrow<Vertex>(rng.next_below(60));
    EXPECT_EQ(t.lca(u, v), naive_lca(u, v));
  }
}

TEST(Tree, FromGraphRejectsNonTrees) {
  EXPECT_THROW(Tree::from_graph(gen::ring(4), 0), CheckError);
}

TEST(Tree, FromGraphCarriesDemandsToLeaves) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(0, 2, 1.0);
  for (Vertex v = 0; v < 3; ++v) b.set_demand(v, 0.5);
  const Tree t = Tree::from_graph(b.build(), 0);
  ASSERT_TRUE(t.has_demands());
  EXPECT_DOUBLE_EQ(t.demand(1), 0.5);
  EXPECT_DOUBLE_EQ(t.demand(0), 0.0);  // root is internal here
}

TEST(Tree, LeafDemandSetters) {
  Tree t = caterpillar();
  t.set_leaf_demands(std::vector<double>{0.1, 0.2, 0.3});
  EXPECT_DOUBLE_EQ(t.demand(3), 0.1);
  EXPECT_DOUBLE_EQ(t.demand(5), 0.3);
  EXPECT_NEAR(t.total_demand(), 0.6, 1e-12);
  EXPECT_THROW(t.set_demands({1, 0, 0, 0, 0, 0}), CheckError);  // internal ≠ 0
}

TEST(LeafSeparator, SingleLeafCutsItsLightestBoundary) {
  const Tree t = caterpillar();
  // Separate {3}: cheapest is cutting edge (1,3) with weight 1.
  std::vector<char> s(6, 0);
  s[3] = 1;
  const auto sep = t.leaf_separator(s);
  EXPECT_TRUE(sep.feasible);
  EXPECT_DOUBLE_EQ(sep.weight, 1.0);
  EXPECT_TRUE(sep.s_side[3]);
  EXPECT_FALSE(sep.s_side[4]);
}

TEST(LeafSeparator, GroupNearCommonAncestorUsesUpperEdge) {
  const Tree t = caterpillar();
  // Separate {3,4}: cutting edge (0,1) costs 2 < cutting both leaf edges (5).
  std::vector<char> s(6, 0);
  s[3] = s[4] = 1;
  const auto sep = t.leaf_separator(s);
  EXPECT_DOUBLE_EQ(sep.weight, 2.0);
  EXPECT_TRUE(sep.s_side[1]);
  EXPECT_FALSE(sep.s_side[0]);
}

TEST(LeafSeparator, EmptySetAndFullSetCostZero) {
  const Tree t = caterpillar();
  EXPECT_DOUBLE_EQ(t.leaf_separator(std::vector<char>(6, 0)).weight, 0.0);
  std::vector<char> all(6, 0);
  all[3] = all[4] = all[5] = 1;
  EXPECT_DOUBLE_EQ(t.leaf_separator(all).weight, 0.0);
}

TEST(LeafSeparator, InfiniteEdgeMakesSeparationInfeasible) {
  // 0 - 1(∞) and 0 - 2; separating leaf 1 from leaf 2 must cut edge (0,1)
  // or (0,2); (0,1) is uncuttable so the separator uses (0,2).
  Tree t = Tree::from_parents({-1, 0, 0}, {0, 7.0, 3.0}, {0, 1, 0});
  std::vector<char> s(3, 0);
  s[1] = 1;
  const auto sep = t.leaf_separator(s);
  EXPECT_TRUE(sep.feasible);
  EXPECT_DOUBLE_EQ(sep.weight, 3.0);

  // Both edges uncuttable ⇒ infeasible.
  Tree t2 = Tree::from_parents({-1, 0, 0}, {0, 7.0, 3.0}, {0, 1, 1});
  const auto sep2 = t2.leaf_separator(s);
  EXPECT_FALSE(sep2.feasible);
  EXPECT_TRUE(std::isinf(sep2.weight));
}

TEST(LeafSeparator, TieBreakMinimizesSSideNodes) {
  // Star: root 0 with leaves 1,2,3, all weight 1.  Separating {1} can cut
  // (0,1) [1 node on S side] or (0,2)+(0,3) — heavier.  Weight decides here,
  // but for equal-weight alternatives prefer fewer S-side nodes: make
  // cutting (0,1) and cutting {(0,2),(0,3)} both cost 2.
  Tree t = Tree::from_parents({-1, 0, 0, 0}, {0, 2.0, 1.0, 1.0});
  std::vector<char> s(4, 0);
  s[1] = 1;
  const auto sep = t.leaf_separator(s);
  EXPECT_DOUBLE_EQ(sep.weight, 2.0);
  int ones = 0;
  for (char c : sep.s_side) ones += c;
  EXPECT_EQ(ones, 1);  // only leaf 1, not {0,1} or more
}

TEST(LeafSeparator, WeightMatchesLabelCut) {
  Rng rng(77);
  for (int round = 0; round < 10; ++round) {
    const Graph g = gen::random_tree(40, rng, gen::WeightRange{1.0, 9.0});
    const Tree t = Tree::from_graph(g, 0);
    std::vector<char> s(40, 0);
    for (Vertex leaf : t.leaves()) s[leaf] = rng.next_bool(0.5) ? 1 : 0;
    const auto sep = t.leaf_separator(s);
    ASSERT_TRUE(sep.feasible);
    // Recompute the cut weight from the labelling.
    Weight w = 0;
    for (Vertex v = 0; v < t.node_count(); ++v) {
      if (v == t.root()) continue;
      if (sep.s_side[static_cast<std::size_t>(v)] !=
          sep.s_side[static_cast<std::size_t>(t.parent(v))]) {
        w += t.parent_weight(v);
      }
    }
    EXPECT_NEAR(w, sep.weight, 1e-9);
    // Labels must respect leaf membership.
    for (Vertex leaf : t.leaves()) {
      EXPECT_EQ(sep.s_side[static_cast<std::size_t>(leaf)] != 0,
                s[static_cast<std::size_t>(leaf)] != 0);
    }
  }
}

TEST(Tree, TotalFiniteEdgeWeightSkipsInfinite) {
  Tree t = Tree::from_parents({-1, 0, 0}, {0, 7.0, 3.0}, {0, 1, 0});
  EXPECT_DOUBLE_EQ(t.total_finite_edge_weight(), 3.0);
}

}  // namespace
}  // namespace hgp
