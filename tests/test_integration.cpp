// Cross-module integration scenarios: the full pipelines a user would run,
// exercised end to end (I/O → solve → refine → evaluate).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "baseline/local_search.hpp"
#include "baseline/recursive_bisection.hpp"
#include "runtime/solver.hpp"
#include "core/tree_solver.hpp"
#include "exp/workloads.hpp"
#include "graph/io.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/mirror.hpp"

namespace hgp {
namespace {

TEST(Integration, MetisRoundTripThenSolve) {
  // Serialize a workload to METIS, read it back, solve both; identical
  // inputs must give identical solutions.
  const Hierarchy h = exp::hierarchy_two_level(2, 2);
  Graph g = exp::make_workload(exp::Family::PlantedPartition, 24, h, 5);
  {
    // Snap weights/demands to the format's integer grid first.
    GraphBuilder b(g.vertex_count());
    for (const Edge& e : g.edges()) {
      b.add_edge(e.u, e.v, std::max(1.0, std::round(e.weight)));
    }
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      b.set_demand(v, std::max(0.001, std::round(g.demand(v) * 1000) / 1000));
    }
    g = b.build();
  }
  std::stringstream ss;
  io::write_metis(g, ss);
  const Graph g2 = io::read_metis(ss);
  SolverOptions opt;
  opt.num_trees = 2;
  opt.units_override = 8;
  opt.seed = 9;
  const HgpResult a = solve_hgp(g, h, opt);
  const HgpResult b = solve_hgp(g2, h, opt);
  EXPECT_EQ(a.placement.leaf_of, b.placement.leaf_of);
  EXPECT_NEAR(a.cost, b.cost, 1e-6);
}

TEST(Integration, SolverPlusRefinementPlusValidation) {
  const Hierarchy h = exp::hierarchy_two_level(2, 4);
  const Graph g = exp::make_workload(exp::Family::StreamDag, 40, h, 7);
  SolverOptions opt;
  opt.num_trees = 2;
  opt.units_override = 8;
  const HgpResult res = solve_hgp(g, h, opt);
  Placement refined = res.placement;
  LocalSearchOptions ls;
  ls.capacity_factor =
      std::max(1.0, load_report(g, h, res.placement).leaf_violation());
  local_search(g, h, refined, ls);
  const double after = placement_cost(g, h, refined);
  EXPECT_LE(after, res.cost + 1e-9);
  // The refined placement still passes every structural validator.
  const MirrorFunction m = build_mirror(g, h, refined);
  EXPECT_NO_THROW(validate_mirror_structure(g, h, m));
  EXPECT_NEAR(placement_cost_mirror(g, h, refined), after, 1e-9);
}

TEST(Integration, TreeInstanceThroughGraphPipeline) {
  // A tree-structured task graph solved (a) natively by the tree solver
  // and (b) through the general graph pipeline; the graph pipeline's
  // decomposition can only add embedding loss, never beat the native
  // solve on the same rounding.
  const Hierarchy h = exp::hierarchy_two_level(2, 2);
  const Tree t = exp::make_tree_workload(40, h, 11, 0.6);
  // Rebuild the same topology as a Graph for the general solver, with
  // demands on every node via tiny epsilon demands for internal nodes...
  // (simplest faithful route: only leaves carry demand, so give internal
  // nodes the minimum and solve all nodes through the graph pipeline).
  GraphBuilder b(t.node_count());
  for (Vertex v = 0; v < t.node_count(); ++v) {
    if (v != t.root()) b.add_edge(t.parent(v), v, t.parent_weight(v));
    b.set_demand(v, t.is_leaf(v) ? t.demand(v) : 0.001);
  }
  const Graph g = b.build();
  SolverOptions gopt;
  gopt.num_trees = 3;
  gopt.units_override = 16;
  gopt.seed = 3;
  const HgpResult graph_res = solve_hgp(g, h, gopt);
  EXPECT_GT(graph_res.cost, 0.0);
  EXPECT_LE(graph_res.loads.max_violation(), 2.0 * (1 + h.height()) + 1e-9);
}

TEST(Integration, HeterogeneousPipelineComparison) {
  // All algorithms must accept the same instance and produce comparable,
  // fully-evaluated results (the bench harness contract).
  const Hierarchy h = exp::hierarchy_socket_core_ht();
  const Graph g = exp::make_workload(exp::Family::ScaleFree, 48, h, 13);
  Rng rng(5);
  const Placement rb = recursive_bisection_placement(g, h, rng);
  SolverOptions opt;
  opt.num_trees = 2;
  opt.units_override = 4;
  const HgpResult dp = solve_hgp(g, h, opt);
  // Both are real placements over the same leaves.
  EXPECT_EQ(rb.leaf_of.size(), dp.placement.leaf_of.size());
  EXPECT_GT(placement_cost(g, h, rb), 0.0);
  EXPECT_GT(dp.cost, 0.0);
}

TEST(Integration, GeneralCostMultipliersEndToEnd) {
  // Lemma-1 path through the whole stack: non-normalized multipliers.
  const Hierarchy h({2, 2}, {7.0, 3.0, 2.0});
  const Graph g = exp::make_workload(exp::Family::Grid, 36, h, 3);
  SolverOptions opt;
  opt.num_trees = 2;
  opt.units_override = 8;
  const HgpResult res = solve_hgp(g, h, opt);
  EXPECT_GE(res.cost, trivial_cost_lower_bound(g, h) - 1e-9);
  EXPECT_NEAR(res.cost, placement_cost(g, h, res.placement), 1e-9);
}

}  // namespace
}  // namespace hgp
