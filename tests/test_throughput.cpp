#include <gtest/gtest.h>

#include "exp/workloads.hpp"
#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"
#include "sim/throughput.hpp"

namespace hgp {
namespace {

using sim::MachineModel;
using sim::analyze_throughput;

TEST(Throughput, TaperedModelShape) {
  const MachineModel m = MachineModel::tapered(3, 16.0, 2.0);
  ASSERT_EQ(m.uplink_bandwidth.size(), 4u);
  EXPECT_DOUBLE_EQ(m.uplink_bandwidth[3], 16.0);
  EXPECT_DOUBLE_EQ(m.uplink_bandwidth[2], 8.0);
  EXPECT_DOUBLE_EQ(m.uplink_bandwidth[1], 4.0);
}

TEST(Throughput, HandComputedTwoCoreExample) {
  // Tasks 0-1 with volume 6 split across the two cores of one socket;
  // leaf uplink bandwidth 12 → leaf utilization 0.5 at λ=1.
  GraphBuilder b(2);
  b.add_edge(0, 1, 6.0);
  b.set_demand(0, 0.25);
  b.set_demand(1, 0.25);
  const Graph g = b.build();
  const Hierarchy h({2}, {1.0, 0.0});
  MachineModel m;
  m.uplink_bandwidth = {0.0, 12.0};
  const auto r = analyze_throughput(g, h, Placement{{0, 1}}, m);
  EXPECT_EQ(r.bottleneck_level, 1);
  EXPECT_NEAR(r.throughput, 2.0, 1e-9);  // worst utilization 0.5
  EXPECT_NEAR(r.utilization[1][0], 0.5, 1e-9);
  EXPECT_NEAR(r.utilization[1][1], 0.5, 1e-9);
}

TEST(Throughput, CpuBoundWhenColocated) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 6.0);
  b.set_demand(0, 0.5);
  b.set_demand(1, 0.5);
  const Graph g = b.build();
  const Hierarchy h({2}, {1.0, 0.0});
  MachineModel m;
  m.uplink_bandwidth = {0.0, 1e9};
  const auto r = analyze_throughput(g, h, Placement{{0, 0}}, m);
  EXPECT_EQ(r.bottleneck_level, -1);  // CPU bound: core 0 at load 1.0
  EXPECT_EQ(r.bottleneck_node, 0);
  EXPECT_NEAR(r.throughput, 1.0, 1e-9);
}

TEST(Throughput, CrossingVolumePassesEveryLevelAboveTheLca) {
  // One edge across sockets on a 2×2 machine: it loads both leaf uplinks
  // AND both socket uplinks.
  GraphBuilder b(2);
  b.add_edge(0, 1, 4.0);
  b.set_demand(0, 0.1);
  b.set_demand(1, 0.1);
  const Graph g = b.build();
  const Hierarchy h({2, 2}, {2.0, 1.0, 0.0});
  MachineModel m;
  m.uplink_bandwidth = {0.0, 8.0, 8.0};
  const auto r = analyze_throughput(g, h, Placement{{0, 2}}, m);
  EXPECT_NEAR(r.utilization[1][0], 0.5, 1e-9);  // socket 0 uplink
  EXPECT_NEAR(r.utilization[1][1], 0.5, 1e-9);  // socket 1 uplink
  EXPECT_NEAR(r.utilization[2][0], 0.5, 1e-9);  // leaf 0 uplink
  EXPECT_NEAR(r.utilization[2][2], 0.5, 1e-9);  // leaf 2 uplink
  EXPECT_NEAR(r.throughput, 2.0, 1e-9);
}

TEST(Throughput, BetterPlacementsYieldHigherThroughput) {
  // On a tapered machine the co-locating placement must sustain at least
  // the rate of the scattering one.
  const Hierarchy h = exp::hierarchy_two_level(2, 4);
  const Graph g =
      exp::make_workload(exp::Family::PlantedPartition, 32, h, 3, 0.5);
  const MachineModel m =
      MachineModel::tapered(h.height(), g.total_edge_weight() / 4, 4.0);
  Placement clustered;
  clustered.leaf_of.resize(32);
  for (Vertex v = 0; v < 32; ++v) clustered.leaf_of[v] = v * 8 / 32;
  Rng rng(5);
  Placement scattered;
  scattered.leaf_of.resize(32);
  for (auto& l : scattered.leaf_of) l = narrow<LeafId>(rng.next_below(8));
  const double tc = analyze_throughput(g, h, clustered, m).throughput;
  const double ts = analyze_throughput(g, h, scattered, m).throughput;
  EXPECT_GE(tc, ts);
}

TEST(Throughput, ModelValidation) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  b.set_demand(0, 0.5);
  b.set_demand(1, 0.5);
  const Graph g = b.build();
  const Hierarchy h({2}, {1.0, 0.0});
  MachineModel wrong_size;
  wrong_size.uplink_bandwidth = {1.0};
  EXPECT_THROW(analyze_throughput(g, h, Placement{{0, 1}}, wrong_size),
               CheckError);
  MachineModel zero_bw;
  zero_bw.uplink_bandwidth = {0.0, 0.0};
  EXPECT_THROW(analyze_throughput(g, h, Placement{{0, 1}}, zero_bw),
               CheckError);
}

}  // namespace
}  // namespace hgp
