#include <gtest/gtest.h>

#include "baseline/greedy.hpp"
#include "baseline/local_search.hpp"
#include "baseline/multilevel.hpp"
#include "baseline/random_placement.hpp"
#include "baseline/recursive_bisection.hpp"
#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"

namespace hgp {
namespace {

Graph workload(std::uint64_t seed, Vertex n = 32) {
  Rng rng(seed);
  Graph g = gen::planted_partition(n, 4, 0.7, 0.05, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / n);  // 4 clusters fit 4 leaf groups
  return g;
}

const Hierarchy& hier() {
  static const Hierarchy h({2, 2, 2}, {8.0, 3.0, 1.0, 0.0});
  return h;
}

TEST(RandomPlacement, CompleteAndMostlyFeasible) {
  const Graph g = workload(1);
  Rng rng(2);
  const Placement p = random_placement(g, hier(), rng);
  EXPECT_EQ(p.leaf_of.size(), static_cast<std::size_t>(g.vertex_count()));
  const LoadReport r = load_report(g, hier(), p);
  EXPECT_LE(r.leaf_violation(), 2.0);  // first-fit keeps loads sane
}

TEST(RandomPlacement, DeterministicInSeed) {
  const Graph g = workload(3);
  Rng a(7), b(7);
  EXPECT_EQ(random_placement(g, hier(), a).leaf_of,
            random_placement(g, hier(), b).leaf_of);
}

TEST(Greedy, BeatsRandomOnClusteredWorkloads) {
  const Graph g = workload(5);
  Rng rng(6);
  const double c_greedy = placement_cost(g, hier(), greedy_placement(g, hier()));
  double c_random = 0;
  for (int i = 0; i < 5; ++i) {
    c_random += placement_cost(g, hier(), random_placement(g, hier(), rng));
  }
  c_random /= 5;
  EXPECT_LT(c_greedy, c_random);
}

TEST(Greedy, RespectsCapacityWhenPossible) {
  const Graph g = workload(7);
  const Placement p = greedy_placement(g, hier());
  const LoadReport r = load_report(g, hier(), p);
  EXPECT_LE(r.leaf_violation(), 1.0 + 1e-9);
}

TEST(Greedy, MergesHeavyPairs) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 100.0);
  b.add_edge(2, 3, 100.0);
  b.add_edge(1, 2, 1.0);
  for (Vertex v = 0; v < 4; ++v) b.set_demand(v, 0.5);
  const Graph g = b.build();
  const Placement p = greedy_placement(g, Hierarchy::kbgp(2));
  EXPECT_EQ(p[0], p[1]);
  EXPECT_EQ(p[2], p[3]);
}

TEST(RecursiveBisection, FindsPlantedStructure) {
  const Graph g = workload(9);
  Rng rng(10);
  const Placement p = recursive_bisection_placement(g, hier(), rng);
  const double cost = placement_cost(g, hier(), p);
  Rng rng2(11);
  const double random_cost =
      placement_cost(g, hier(), random_placement(g, hier(), rng2));
  EXPECT_LT(cost, random_cost);
}

TEST(RecursiveBisection, BalancesLoadsApproximately) {
  const Graph g = workload(12);
  Rng rng(13);
  const Placement p = recursive_bisection_placement(g, hier(), rng);
  const LoadReport r = load_report(g, hier(), p);
  // Proportional splitting with 10% slack per level.
  EXPECT_LE(r.max_violation(), 1.8);
}

TEST(LocalSearch, NeverWorsensAndReportsStats) {
  const Graph g = workload(14);
  Rng rng(15);
  Placement p = random_placement(g, hier(), rng);
  const double before = placement_cost(g, hier(), p);
  const LocalSearchStats stats = local_search(g, hier(), p);
  const double after = placement_cost(g, hier(), p);
  EXPECT_LE(after, before + 1e-9);
  EXPECT_DOUBLE_EQ(stats.initial_cost, before);
  EXPECT_DOUBLE_EQ(stats.final_cost, after);
  EXPECT_GE(stats.passes, 1);
}

TEST(LocalSearch, RespectsCapacityFactor) {
  const Graph g = workload(16);
  Rng rng(17);
  Placement p = random_placement(g, hier(), rng);
  LocalSearchOptions opt;
  opt.capacity_factor = 1.0;
  local_search(g, hier(), p, opt);
  const LoadReport r = load_report(g, hier(), p);
  // Random placement was feasible (capacity 1 fits), moves keep it so.
  EXPECT_LE(r.leaf_violation(), 1.0 + 1e-9);
}

TEST(LocalSearch, FixesAnObviousMisplacement) {
  // Two tasks with a heavy edge placed on far leaves; plenty of room.
  GraphBuilder b(2);
  b.add_edge(0, 1, 50.0);
  b.set_demand(0, 0.3);
  b.set_demand(1, 0.3);
  const Graph g = b.build();
  Placement p{{0, 7}};  // opposite corners of the 8-leaf hierarchy
  local_search(g, hier(), p);
  EXPECT_EQ(placement_cost(g, hier(), p), 0.0);  // co-located
}

TEST(Multilevel, ProducesCompetitivePlacements) {
  const Graph g = workload(18, 64);
  Rng r1(19), r2(20), r3(21);
  const Placement ml = multilevel_placement(g, hier(), r1);
  const Placement rnd = random_placement(g, hier(), r2);
  EXPECT_LT(placement_cost(g, hier(), ml), placement_cost(g, hier(), rnd));
  (void)r3;
}

TEST(Multilevel, WorksWithoutCoarsening) {
  // Graph already below the coarsening target.
  const Graph g = workload(22, 16);
  Rng rng(23);
  MultilevelOptions opt;
  opt.coarsen_target = 64;
  const Placement p = multilevel_placement(g, hier(), rng, opt);
  EXPECT_EQ(p.leaf_of.size(), 16u);
}

TEST(Multilevel, CoarseningPreservesTotalDemandAndWeight) {
  const Graph g = workload(24, 48);
  Rng rng(25);
  MultilevelOptions opt;
  opt.coarsen_target = 8;
  const Placement p = multilevel_placement(g, hier(), rng, opt);
  const LoadReport r = load_report(g, hier(), p);
  // Sanity: every task assigned, loads accounted.
  double total = 0;
  for (double x : r.load[0]) total += x;
  EXPECT_NEAR(total, g.total_demand(), 1e-9);
}

}  // namespace
}  // namespace hgp
