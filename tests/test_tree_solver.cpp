#include <gtest/gtest.h>

#include "baseline/exact.hpp"
#include "core/tree_solver.hpp"
#include "graph/generators.hpp"

namespace hgp {
namespace {

Tree random_instance(Vertex n, Rng& rng, double lo = 0.2, double hi = 0.6) {
  const Graph g = gen::random_tree(n, rng, gen::WeightRange{1.0, 9.0});
  Tree t = Tree::from_graph(g, 0);
  std::vector<double> d(t.leaves().size());
  for (auto& x : d) x = rng.next_double(lo, hi);
  t.set_leaf_demands(d);
  return t;
}

TEST(TreeSolver, CostBelowExactOptimum) {
  // Theorem 2: cost is *optimal* (≤ OPT, paying with capacity violation).
  Rng rng(1);
  int compared = 0;
  for (int round = 0; round < 8; ++round) {
    const Tree t = random_instance(8, rng, 0.3, 0.7);
    const Hierarchy h({2, 2}, {3.0, 1.0, 0.0});
    const ExactTreeResult exact = solve_exact_hgpt(t, h);
    if (!exact.feasible) continue;
    TreeSolverOptions opt;
    opt.epsilon = 0.25;
    const TreeHgpSolution sol = solve_hgpt(t, h, opt);
    EXPECT_LE(sol.cost, exact.cost + 1e-6) << "round " << round;
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST(TreeSolver, RelaxedCostIsALowerBoundForAssignmentCost) {
  Rng rng(2);
  const Tree t = random_instance(16, rng);
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  const TreeHgpSolution sol = solve_hgpt(t, h, {});
  EXPECT_LE(sol.cost, sol.relaxed_cost + 1e-9);
}

class TreeSolverSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(TreeSolverSweep, ViolationBoundHoldsAcrossHeightsAndSeeds) {
  const int height = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  const double eps = 0.5;
  std::vector<double> cm;
  for (int j = height; j >= 0; --j) cm.push_back(static_cast<double>(j) * 2);
  const Hierarchy h = Hierarchy::uniform(height, 2, cm);
  Rng rng(seed);
  const Tree t = random_instance(12, rng, 0.2, 0.5);
  TreeSolverOptions opt;
  opt.epsilon = eps;
  const TreeHgpSolution sol = solve_hgpt(t, h, opt);
  for (int j = 0; j <= height; ++j) {
    EXPECT_LE(sol.violation[static_cast<std::size_t>(j)],
              (1.0 + eps) * (1.0 + j) + 1e-9)
        << "level " << j;
  }
  EXPECT_LE(sol.max_violation(), (1.0 + eps) * (1.0 + height) + 1e-9);
  EXPECT_LE(sol.cost, sol.relaxed_cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    HeightsAndSeeds, TreeSolverSweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(11ull, 22ull, 33ull)));

TEST(TreeSolver, EpsilonTradesAccuracyForSpeed) {
  Rng rng(3);
  const Tree t = random_instance(18, rng, 0.1, 0.3);
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  TreeSolverOptions coarse;
  coarse.units_override = 4;
  TreeSolverOptions fine;
  fine.units_override = 24;
  const TreeHgpSolution sc = solve_hgpt(t, h, coarse);
  const TreeHgpSolution sf = solve_hgpt(t, h, fine);
  EXPECT_LT(sc.stats.signature_count, sf.stats.signature_count);
  EXPECT_LT(sc.stats.merge_operations, sf.stats.merge_operations);
}

TEST(TreeSolver, StarTreeHeavyEdgesStayTogether) {
  // Star with two heavy-edge leaves and two light ones; capacity forces a
  // 2+2 split — the heavy pair must share a leaf.
  Tree t = Tree::from_parents({-1, 0, 0, 0, 0}, {0, 100.0, 100.0, 1.0, 1.0});
  t.set_leaf_demands(std::vector<double>{0.5, 0.5, 0.5, 0.5});
  const Hierarchy h = Hierarchy::kbgp(2);
  TreeSolverOptions opt;
  opt.units_override = 2;
  const TreeHgpSolution sol = solve_hgpt(t, h, opt);
  EXPECT_EQ(sol.assignment.of(1), sol.assignment.of(2))
      << "heavy communicators split across leaves";
  // Definition cost: separating {3,4} from {1,2} cuts edges of weight 1+1;
  // both sets pay their separator: (2+2)/2 · (1-0) = 2.
  EXPECT_NEAR(sol.cost, 2.0, 1e-9);
}

}  // namespace
}  // namespace hgp
