#include <gtest/gtest.h>

#include "baseline/exact.hpp"
#include "baseline/random_placement.hpp"
#include "runtime/solver.hpp"
#include "graph/generators.hpp"

namespace hgp {
namespace {

Graph workload(std::uint64_t seed, Vertex n = 24) {
  Rng rng(seed);
  Graph g = gen::planted_partition(n, 4, 0.75, 0.05, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / n);
  return g;
}

const Hierarchy& hier() {
  static const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  return h;
}

TEST(Solver, ProducesValidatedPlacement) {
  const Graph g = workload(1);
  SolverOptions opt;
  opt.num_trees = 2;
  const HgpResult r = solve_hgp(g, hier(), opt);
  EXPECT_EQ(r.placement.leaf_of.size(),
            static_cast<std::size_t>(g.vertex_count()));
  EXPECT_NEAR(r.cost, placement_cost(g, hier(), r.placement), 1e-9);
  EXPECT_GE(r.best_tree, 0);
  EXPECT_EQ(r.tree_costs.size(), 2u);
}

TEST(Solver, ViolationWithinTheoremOneBound) {
  const double eps = 0.5;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Graph g = workload(seed);
    SolverOptions opt;
    opt.epsilon = eps;
    opt.num_trees = 2;
    opt.seed = seed;
    const HgpResult r = solve_hgp(g, hier(), opt);
    const int h = hier().height();
    EXPECT_LE(r.loads.max_violation(), (1 + eps) * (1 + h) + 1e-9)
        << "seed " << seed;
  }
}

TEST(Solver, BeatsRandomPlacementOnClusteredWorkloads) {
  const Graph g = workload(5, 32);
  SolverOptions opt;
  opt.num_trees = 3;
  const HgpResult r = solve_hgp(g, hier(), opt);
  Rng rng(6);
  double random_cost = 0;
  for (int i = 0; i < 5; ++i) {
    random_cost +=
        placement_cost(g, hier(), random_placement(g, hier(), rng));
  }
  random_cost /= 5;
  EXPECT_LT(r.cost, random_cost);
}

TEST(Solver, NearOptimalOnSmallInstances) {
  // Bicriteria guarantee: cost ≤ O(log n)·OPT.  On small clustered
  // instances with a good tree the practical ratio should be small; we
  // assert a loose factor-3 envelope to catch regressions, and that the
  // solver is never *better* than the violation-free OPT by more than the
  // capacity slack it enjoys... (it may beat OPT thanks to violation).
  Rng rng(7);
  int compared = 0;
  for (std::uint64_t seed = 10; seed <= 14 && compared < 3; ++seed) {
    Graph g = gen::erdos_renyi(9, 0.5, rng, gen::WeightRange{1.0, 9.0});
    gen::set_random_demands(g, rng, 0.15, 0.35);
    const ExactResult exact = solve_exact_hgp(g, hier());
    if (!exact.feasible) continue;
    SolverOptions opt;
    opt.num_trees = 4;
    opt.seed = seed;
    const HgpResult r = solve_hgp(g, hier(), opt);
    EXPECT_LE(r.cost, 3.0 * exact.cost + 1e-9) << "seed " << seed;
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

TEST(Solver, DeterministicInSeed) {
  const Graph g = workload(8);
  SolverOptions opt;
  opt.num_trees = 2;
  opt.seed = 42;
  const HgpResult a = solve_hgp(g, hier(), opt);
  const HgpResult b = solve_hgp(g, hier(), opt);
  EXPECT_EQ(a.placement.leaf_of, b.placement.leaf_of);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(Solver, ParallelMatchesSequential) {
  const Graph g = workload(9);
  ThreadPool pool(2);
  SolverOptions seq;
  seq.num_trees = 3;
  seq.seed = 5;
  SolverOptions par = seq;
  par.pool = &pool;
  const HgpResult a = solve_hgp(g, hier(), seq);
  const HgpResult b = solve_hgp(g, hier(), par);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.placement.leaf_of, b.placement.leaf_of);
}

TEST(Solver, MoreTreesNeverHurt) {
  const Graph g = workload(10, 28);
  SolverOptions one;
  one.num_trees = 1;
  one.seed = 3;
  SolverOptions many;
  many.num_trees = 4;
  many.seed = 3;
  // Tree 0 is identical under both runs (same fork), so min over a superset
  // can only be ≤.
  EXPECT_LE(solve_hgp(g, hier(), many).cost, solve_hgp(g, hier(), one).cost);
}

TEST(Solver, CutterChoiceIsPluggable) {
  const Graph g = workload(11);
  const RandomCutter random_cutter;
  SolverOptions opt;
  opt.num_trees = 2;
  opt.cutter = &random_cutter;
  const HgpResult r = solve_hgp(g, hier(), opt);
  EXPECT_GT(r.cost, 0.0);  // random trees still produce a valid solution
}

TEST(Solver, RequiresDemands) {
  const Graph g = gen::grid2d(3, 3);
  EXPECT_THROW(solve_hgp(g, hier(), {}), CheckError);
}

TEST(Solver, GeneralCostMultipliersSupported) {
  // Non-normalized cm: the solver evaluates Eq. 1 under the original
  // multipliers (Lemma 1 handling is internal to the DP cost structure).
  const Graph g = workload(12);
  const Hierarchy h({2, 2}, {5.0, 2.0, 1.0});
  SolverOptions opt;
  opt.num_trees = 2;
  const HgpResult r = solve_hgp(g, h, opt);
  EXPECT_GE(r.cost, trivial_cost_lower_bound(g, h) - 1e-9);
}

TEST(Solver, TinyInstancesEndToEnd) {
  // Degenerate sizes through the whole pipeline.
  const Hierarchy h = hier();
  {
    GraphBuilder b(1);
    b.set_demand(0, 0.7);
    const HgpResult r = solve_hgp(b.build(), h, {});
    EXPECT_EQ(r.placement.leaf_of.size(), 1u);
    EXPECT_DOUBLE_EQ(r.cost, 0.0);
  }
  {
    GraphBuilder b(2);
    b.add_edge(0, 1, 3.0);
    b.set_demand(0, 0.9);
    b.set_demand(1, 0.9);
    SolverOptions opt;
    opt.units_override = 10;
    const HgpResult r = solve_hgp(b.build(), h, opt);
    // Two heavy tasks cannot share a leaf: they sit apart, ideally on
    // sibling leaves (LCA level 1, cm = 1): cost 3.
    EXPECT_NE(r.placement[0], r.placement[1]);
    EXPECT_NEAR(r.cost, 3.0, 1e-9);
  }
}

TEST(Solver, DisconnectedWorkload) {
  GraphBuilder b(6);
  b.add_edge(0, 1, 5.0);
  b.add_edge(2, 3, 5.0);
  b.add_edge(4, 5, 5.0);
  for (Vertex v = 0; v < 6; ++v) b.set_demand(v, 0.4);
  SolverOptions opt;
  opt.units_override = 10;
  const HgpResult r = solve_hgp(b.build(), hier(), opt);
  // Each pair fits one leaf: zero communication cost is reachable.
  EXPECT_NEAR(r.cost, 0.0, 1e-9);
  EXPECT_EQ(r.placement[0], r.placement[1]);
  EXPECT_EQ(r.placement[2], r.placement[3]);
  EXPECT_EQ(r.placement[4], r.placement[5]);
}

}  // namespace
}  // namespace hgp
