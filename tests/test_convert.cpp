#include <gtest/gtest.h>

#include "core/convert.hpp"
#include "core/tree_dp.hpp"
#include "graph/generators.hpp"

namespace hgp {
namespace {

Tree random_instance(Vertex n, Rng& rng, double lo = 0.2, double hi = 0.6) {
  const Graph g = gen::random_tree(n, rng, gen::WeightRange{1.0, 9.0});
  Tree t = Tree::from_graph(g, 0);
  std::vector<double> d(t.leaves().size());
  for (auto& x : d) x = rng.next_double(lo, hi);
  t.set_leaf_demands(d);
  return t;
}

struct Converted {
  Tree t;
  TreeDpResult dp;
  TreeAssignment assignment;
};

Converted run(Vertex n, const Hierarchy& h, std::uint64_t seed,
              DemandUnits units) {
  Rng rng(seed);
  Converted c{random_instance(n, rng), {}, {}};
  TreeDpOptions opt;
  opt.units_override = units;
  c.dp = solve_rhgpt(c.t, h, opt);
  c.assignment = convert_to_assignment(c.t, h, c.dp.solution,
                                       c.dp.scaled.units);
  return c;
}

TEST(Convert, EveryLeafAssignedToAValidHLeaf) {
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  const Converted c = run(14, h, 1, 6);
  for (Vertex leaf : c.t.leaves()) {
    const LeafId l = c.assignment.of(leaf);
    EXPECT_GE(l, 0);
    EXPECT_LT(l, h.leaf_count());
  }
}

TEST(Convert, CostNeverIncreases) {
  // Theorem 5: grouping only unions sets, and cuts are sub-additive.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
    const Converted c = run(12, h, seed, 6);
    const double hgpt = assignment_cost(c.t, h, c.assignment);
    EXPECT_LE(hgpt, c.dp.cost + 1e-9) << "seed " << seed;
  }
}

TEST(Convert, ViolationWithinTheoremTwoBound) {
  // Violation at level j ≤ (1+ε)(1+j); with the leaf level j = h the
  // overall bound is (1+ε)(1+h).
  const double eps = 0.5;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
    Rng rng(seed * 31);
    const Tree t = random_instance(14, rng);
    TreeDpOptions opt;
    opt.epsilon = eps;
    const TreeDpResult dp = solve_rhgpt(t, h, opt);
    const TreeAssignment a =
        convert_to_assignment(t, h, dp.solution, dp.scaled.units);
    const auto violation = assignment_violation(t, h, a);
    for (int j = 0; j <= h.height(); ++j) {
      EXPECT_LE(violation[static_cast<std::size_t>(j)],
                (1.0 + eps) * (1.0 + j) + 1e-9)
          << "seed " << seed << " level " << j;
    }
  }
}

TEST(Convert, RespectsHierarchyLaminarity) {
  // Tasks of one level-(j+1) RHGPT set must land under a single level-j
  // H-node's subtree... more precisely each RHGPT set is assigned intact:
  // all its leaves map to H-leaves under one level-j node.
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  const Converted c = run(16, h, 3, 6);
  for (int j = 1; j <= h.height(); ++j) {
    for (const auto& set : c.dp.solution.sets[static_cast<std::size_t>(j)]) {
      const std::int64_t anchor =
          h.leaf_ancestor(c.assignment.of(set[0]), j);
      for (Vertex leaf : set) {
        EXPECT_EQ(h.leaf_ancestor(c.assignment.of(leaf), j), anchor)
            << "level-" << j << " set split across H-nodes";
      }
    }
  }
}

TEST(Convert, SingleSetPerLevelLandsOnFirstLeaf) {
  // A trivial instance (everything fits one leaf) maps everything to leaf 0.
  Tree t = Tree::from_parents({-1, 0, 0}, {0, 1.0, 1.0});
  t.set_leaf_demands(std::vector<double>{0.3, 0.3});
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  TreeDpOptions opt;
  opt.units_override = 10;
  const TreeDpResult dp = solve_rhgpt(t, h, opt);
  const TreeAssignment a =
      convert_to_assignment(t, h, dp.solution, dp.scaled.units);
  for (Vertex leaf : t.leaves()) {
    EXPECT_EQ(a.of(leaf), 0);
  }
}

TEST(Convert, AssignmentViolationComputesRealLoads) {
  Tree t = Tree::from_parents({-1, 0, 0}, {0, 1.0, 1.0});
  t.set_leaf_demands(std::vector<double>{0.8, 0.7});
  TreeAssignment a;
  a.leaf_of = {-1, 0, 0};  // both jobs on leaf 0 (node 0 is the root)
  const Hierarchy h({2}, {1.0, 0.0});
  const auto v = assignment_violation(t, h, a);
  EXPECT_NEAR(v[1], 1.5, 1e-12);        // leaf level
  EXPECT_NEAR(v[0], 1.5 / 2.0, 1e-12);  // root holds 1.5 of capacity 2
}

TEST(Convert, HeightThreeViolationBound) {
  const double eps = 0.5;
  const Hierarchy h({2, 2, 2}, {8.0, 4.0, 1.0, 0.0});
  Rng rng(11);
  const Tree t = random_instance(12, rng, 0.2, 0.5);
  TreeDpOptions opt;
  opt.epsilon = eps;
  const TreeDpResult dp = solve_rhgpt(t, h, opt);
  const TreeAssignment a =
      convert_to_assignment(t, h, dp.solution, dp.scaled.units);
  const auto violation = assignment_violation(t, h, a);
  for (int j = 0; j <= h.height(); ++j) {
    EXPECT_LE(violation[static_cast<std::size_t>(j)],
              (1.0 + eps) * (1.0 + j) + 1e-9);
  }
  EXPECT_LE(assignment_cost(t, h, a), dp.cost + 1e-9);
}

TEST(Convert, FullDefinitionThreeValidationPasses) {
  // The converted assignment satisfies the UNRELAXED Definition 3: fan-out
  // bounded by DEG(j) and capacities within the Theorem-2 factor.
  const double eps = 0.5;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const Hierarchy h({2, 3}, {4.0, 1.0, 0.0});
    Rng rng(seed * 17);
    const Tree t = random_instance(14, rng);
    TreeDpOptions opt;
    opt.epsilon = eps;
    const TreeDpResult dp = solve_rhgpt(t, h, opt);
    const TreeAssignment a =
        convert_to_assignment(t, h, dp.solution, dp.scaled.units);
    EXPECT_NO_THROW(validate_hgpt_assignment(
        t, h, a, (1 + eps) * (1 + h.height())))
        << "seed " << seed;
  }
}

TEST(Convert, ValidationCatchesBrokenAssignments) {
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  Rng rng(5);
  const Tree t = random_instance(10, rng);
  TreeAssignment a;
  a.leaf_of.assign(static_cast<std::size_t>(t.node_count()), -1);
  for (Vertex leaf : t.leaves()) {
    a.leaf_of[static_cast<std::size_t>(leaf)] = 0;  // pile everything up
  }
  // Everything on one leaf blows the leaf capacity at factor 1.
  EXPECT_THROW(validate_hgpt_assignment(t, h, a, 1.0), CheckError);
  // Out-of-range H-leaf.
  a.leaf_of[static_cast<std::size_t>(t.leaves()[0])] = 99;
  EXPECT_THROW(validate_hgpt_assignment(t, h, a, 100.0), CheckError);
}

}  // namespace
}  // namespace hgp
