// Wire-layer property suite: frame codec (round-trip, every-truncation and
// every-bit-flip rejection, hostile lengths), WireReader allocation-bomb
// discipline, FrameChannel deadlines and faults, and the protocol-version
// handshake (src/net/, docs/FORMATS.md "shard wire format").
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <thread>
#include <vector>

#include "io/snapshot.hpp"
#include "net/channel.hpp"
#include "net/frame.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "util/fault_injector.hpp"

namespace hgp::net {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

StatusCode thrown_code(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const SolveError& e) {
    return e.code();
  } catch (...) {
    return StatusCode::kInternal;
  }
  return StatusCode::kOk;
}

// ---------------------------------------------------------------- frames

TEST(Frame, RoundTripsPayloads) {
  for (std::size_t size : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                           std::size_t{64}, std::size_t{4096}}) {
    std::vector<std::byte> payload(size);
    for (std::size_t i = 0; i < size; ++i) {
      payload[i] = static_cast<std::byte>((i * 131 + 7) & 0xff);
    }
    const std::vector<std::byte> wire = encode_frame(42, payload);
    ASSERT_EQ(wire.size(), kFrameHeaderSize + size);
    const Frame frame = decode_frame(wire);
    EXPECT_EQ(frame.type, 42);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(Frame, EveryTruncationRejected) {
  const std::vector<std::byte> payload = bytes_of({1, 2, 3, 4, 5, 6, 7, 8});
  const std::vector<std::byte> wire = encode_frame(7, payload);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    const std::span<const std::byte> prefix(wire.data(), len);
    EXPECT_EQ(thrown_code([&] { decode_frame(prefix); }),
              StatusCode::kDataLoss)
        << "prefix of " << len << " bytes must not decode";
  }
}

TEST(Frame, EveryBitFlipRejected) {
  const std::vector<std::byte> payload = bytes_of({10, 20, 30, 40, 50});
  const std::vector<std::byte> wire = encode_frame(3, payload);
  for (std::size_t byte = 0; byte < wire.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<std::byte> flipped = wire;
      flipped[byte] ^= static_cast<std::byte>(1 << bit);
      EXPECT_EQ(thrown_code([&] { decode_frame(flipped); }),
                StatusCode::kDataLoss)
          << "bit " << bit << " of byte " << byte << " must not survive";
    }
  }
}

TEST(Frame, TrailingGarbageRejected) {
  std::vector<std::byte> wire = encode_frame(5, bytes_of({1, 2, 3}));
  wire.push_back(std::byte{0});
  EXPECT_EQ(thrown_code([&] { decode_frame(wire); }), StatusCode::kDataLoss);
}

/// Builds 20 header bytes with a VALID header CRC around otherwise hostile
/// fields, so the test reaches the check after the CRC.
std::vector<std::byte> forged_header(std::uint32_t magic,
                                     std::uint16_t version, std::uint16_t type,
                                     std::uint32_t payload_size,
                                     std::uint32_t payload_crc) {
  std::vector<std::byte> bytes(kFrameHeaderSize);
  std::memcpy(bytes.data() + 0, &magic, 4);
  std::memcpy(bytes.data() + 4, &version, 2);
  std::memcpy(bytes.data() + 6, &type, 2);
  std::memcpy(bytes.data() + 8, &payload_size, 4);
  std::memcpy(bytes.data() + 12, &payload_crc, 4);
  const std::uint32_t header_crc = io::crc32(bytes.data(), 16);
  std::memcpy(bytes.data() + 16, &header_crc, 4);
  return bytes;
}

TEST(Frame, HostileLengthRejectedBeforeAllocation) {
  // payload_size far beyond the cap, CRC-valid header: the cap check must
  // fire (kDataLoss) without any attempt to read or allocate 4 GiB.
  const std::vector<std::byte> header = forged_header(
      kFrameMagic, kProtocolVersion, 1, 0xfffffff0u, 0);
  EXPECT_EQ(thrown_code([&] { decode_frame_header(header); }),
            StatusCode::kDataLoss);
}

TEST(Frame, VersionSkewRejected) {
  const std::vector<std::byte> header = forged_header(
      kFrameMagic, kProtocolVersion + 1, 1, 0, 0);
  EXPECT_EQ(thrown_code([&] { decode_frame_header(header); }),
            StatusCode::kDataLoss);
}

TEST(Frame, WrongMagicRejected) {
  const std::vector<std::byte> header =
      forged_header(0x12345678u, kProtocolVersion, 1, 0, 0);
  EXPECT_EQ(thrown_code([&] { decode_frame_header(header); }),
            StatusCode::kDataLoss);
}

// ------------------------------------------------------------ wire codec

TEST(WireReader, HostileCountRejectedBeforeAllocation) {
  // A count prefix claiming ~4 billion elements inside a 4-byte payload
  // must die on the count-vs-remaining check, not in the allocator.
  WireWriter w;
  w.u32(0xffffffffu);
  const std::vector<std::byte> payload = w.take();
  WireReader r(payload, "test");
  EXPECT_EQ(thrown_code([&] { (void)r.i64_span(); }), StatusCode::kDataLoss);

  WireReader r2(payload, "test");
  EXPECT_EQ(thrown_code([&] { (void)r2.blob(); }), StatusCode::kDataLoss);
}

TEST(WireReader, OverReadRejected) {
  WireWriter w;
  w.u16(7);
  const std::vector<std::byte> payload = w.take();
  WireReader r(payload, "test");
  EXPECT_EQ(r.u16(), 7);
  EXPECT_EQ(thrown_code([&] { (void)r.u32(); }), StatusCode::kDataLoss);
}

TEST(WireReader, TrailingBytesRejected) {
  WireWriter w;
  w.u32(1);
  w.u8(0);
  const std::vector<std::byte> payload = w.take();
  WireReader r(payload, "test");
  EXPECT_EQ(r.u32(), 1u);
  EXPECT_EQ(thrown_code([&] { r.expect_exhausted(); }),
            StatusCode::kDataLoss);
}

// --------------------------------------------------------------- protocol

TEST(Protocol, AssignRejectsZeroEpochAndEmptyBatch) {
  AssignMsg ok;
  ok.epoch = 3;
  ok.batch_id = 1;
  ok.tree_indices = {0, 1};
  const AssignMsg round = decode_assign(encode_assign(ok));
  EXPECT_EQ(round.epoch, 3u);
  EXPECT_EQ(round.tree_indices, ok.tree_indices);

  AssignMsg zero_epoch = ok;
  zero_epoch.epoch = 0;
  EXPECT_EQ(thrown_code([&] { decode_assign(encode_assign(zero_epoch)); }),
            StatusCode::kDataLoss);

  AssignMsg empty = ok;
  empty.tree_indices.clear();
  EXPECT_EQ(thrown_code([&] { decode_assign(encode_assign(empty)); }),
            StatusCode::kDataLoss);
}

TEST(Protocol, BatchResultRoundTrips) {
  BatchResultMsg msg;
  msg.epoch = 9;
  msg.batch_id = 4;
  TreeResultWire good;
  good.tree_index = 2;
  good.status = static_cast<std::uint8_t>(StatusCode::kOk);
  good.cost = 12.5;
  good.stats.signature_count = 11;
  good.leaf_of = {0, 1, 2, 1};
  TreeResultWire bad;
  bad.tree_index = 3;
  bad.status = static_cast<std::uint8_t>(StatusCode::kInfeasible);
  bad.error = "tree cannot fit";
  msg.trees = {good, bad};

  const BatchResultMsg round = decode_batch_result(encode_batch_result(msg));
  ASSERT_EQ(round.trees.size(), 2u);
  EXPECT_EQ(round.epoch, 9u);
  EXPECT_EQ(round.trees[0].leaf_of, good.leaf_of);
  EXPECT_EQ(round.trees[0].stats.signature_count, 11u);
  EXPECT_EQ(round.trees[1].error, "tree cannot fit");
  EXPECT_TRUE(round.trees[1].leaf_of.empty());
}

// ---------------------------------------------------------------- channel

TEST(Channel, RoundTripsOverSocketPair) {
  auto [a, b] = socket_pair();
  FrameChannel left{std::move(a)}, right{std::move(b)};
  const Deadline d = Deadline::after_ms(5000);
  left.send(100, bytes_of({1, 2, 3}), d);
  left.send(101, {}, d);
  auto f1 = right.recv(d);
  auto f2 = right.recv(d);
  ASSERT_TRUE(f1.has_value());
  ASSERT_TRUE(f2.has_value());
  EXPECT_EQ(f1->type, 100);
  EXPECT_EQ(f1->payload, bytes_of({1, 2, 3}));
  EXPECT_EQ(f2->type, 101);
  EXPECT_TRUE(f2->payload.empty());
}

TEST(Channel, RecvDeadlineExpires) {
  auto [a, b] = socket_pair();
  FrameChannel left{std::move(a)};
  (void)b;
  EXPECT_EQ(thrown_code([&] { left.recv(Deadline::after_ms(30)); }),
            StatusCode::kDeadlineExceeded);
}

TEST(Channel, CleanCloseBetweenFramesIsNullopt) {
  auto [a, b] = socket_pair();
  FrameChannel left{std::move(a)}, right{std::move(b)};
  right.send(100, {}, Deadline::after_ms(5000));
  right.close();
  auto frame = left.recv(Deadline::after_ms(5000));
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(left.recv(Deadline::after_ms(5000)).has_value());
}

TEST(Channel, CloseMidFrameIsDataLoss) {
  auto [a, b] = socket_pair();
  FrameChannel left{std::move(a)};
  Socket raw = std::move(b);
  // Hand-feed half a frame, then vanish: the reader is mid-frame, so this
  // is a torn stream (kDataLoss), not a clean departure.
  const std::vector<std::byte> wire = encode_frame(100, bytes_of({1, 2}));
  raw.send_all(std::span(wire.data(), wire.size() / 2),
               Deadline::after_ms(5000));
  raw.close();
  EXPECT_EQ(thrown_code([&] { left.recv(Deadline::after_ms(5000)); }),
            StatusCode::kDataLoss);
}

TEST(Channel, TornFrameFaultCaughtByReceiverCrc) {
  auto [a, b] = socket_pair();
  FrameChannel left{std::move(a)}, right{std::move(b)};
  FaultScope torn("net.frame", FaultInjector::kEveryIndex,
                  {FaultInjector::Action::kNetTornFrame});
  left.send(100, bytes_of({1, 2, 3, 4}), Deadline::after_ms(5000));
  EXPECT_EQ(thrown_code([&] { right.recv(Deadline::after_ms(5000)); }),
            StatusCode::kDataLoss);
}

TEST(Channel, ShortWriteFaultTearsTheStream) {
  auto [a, b] = socket_pair();
  FrameChannel left{std::move(a)}, right{std::move(b)};
  StatusCode sender = StatusCode::kOk;
  {
    FaultScope short_write("net.send", FaultInjector::kEveryIndex,
                           {FaultInjector::Action::kIoShortWrite});
    sender = thrown_code([&] {
      left.send(100, bytes_of({1, 2, 3, 4, 5, 6, 7, 8}),
                Deadline::after_ms(5000));
    });
  }
  EXPECT_EQ(sender, StatusCode::kUnavailable);
  // The receiver got a prefix then EOF: torn stream.
  EXPECT_EQ(thrown_code([&] { right.recv(Deadline::after_ms(5000)); }),
            StatusCode::kDataLoss);
}

TEST(Channel, ConnectRefusedFault) {
  FaultScope refuse("net.connect", FaultInjector::kEveryIndex,
                    {FaultInjector::Action::kNetConnectRefused});
  EXPECT_EQ(thrown_code([&] {
              (void)connect_tcp_loopback(1, Deadline::after_ms(1000));
            }),
            StatusCode::kUnavailable);
}

// --------------------------------------------------------------- handshake

TEST(Handshake, CompletesAndReportsRole) {
  auto [a, b] = socket_pair();
  FrameChannel client{std::move(a)}, server{std::move(b)};
  std::uint32_t role = 0xff;
  std::thread t([&] { role = handshake_server(server, Deadline::after_ms(5000)); });
  handshake_client(client, kRoleCoordinator, Deadline::after_ms(5000));
  t.join();
  EXPECT_EQ(role, kRoleCoordinator);
}

TEST(Handshake, VersionMismatchRejected) {
  auto [a, b] = socket_pair();
  FrameChannel client{std::move(a)}, server{std::move(b)};
  StatusCode server_code = StatusCode::kOk;
  std::thread t([&] {
    server_code = thrown_code(
        [&] { (void)handshake_server(server, Deadline::after_ms(5000)); });
  });
  // A Hello claiming a future protocol version: the frame itself is valid
  // (frame versions match), the handshake payload is what skews.
  WireWriter hello;
  hello.u32(kProtocolVersion + 7);
  hello.u32(kRoleCoordinator);
  client.send(kMsgHello, hello.bytes(), Deadline::after_ms(5000));
  t.join();
  EXPECT_EQ(server_code, StatusCode::kDataLoss);
}

TEST(Handshake, NonHelloFirstFrameRejected) {
  auto [a, b] = socket_pair();
  FrameChannel client{std::move(a)}, server{std::move(b)};
  StatusCode server_code = StatusCode::kOk;
  std::thread t([&] {
    server_code = thrown_code(
        [&] { (void)handshake_server(server, Deadline::after_ms(5000)); });
  });
  client.send(kMsgHeartbeat, {}, Deadline::after_ms(5000));
  t.join();
  EXPECT_EQ(server_code, StatusCode::kDataLoss);
}

}  // namespace
}  // namespace hgp::net
