// Broad property sweeps: the paper's invariants checked across the full
// (workload family × hierarchy) grid with parameterized gtest.
#include <gtest/gtest.h>

#include <cmath>

#include "core/convert.hpp"
#include "core/rhgpt.hpp"
#include "core/tree_dp.hpp"
#include "exp/workloads.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/mirror.hpp"

namespace hgp {
namespace {

using exp::Family;

// ---------------------------------------------------------------------------
// Lemma 2 across the grid.

class CostIdentityGrid
    : public ::testing::TestWithParam<std::tuple<Family, int>> {};

TEST_P(CostIdentityGrid, Eq1EqualsEq3OnRandomPlacements) {
  const Family family = std::get<0>(GetParam());
  const int height = std::get<1>(GetParam());
  const Hierarchy h = exp::hierarchy_of_height(height);
  const Graph g = exp::make_workload(family, 40, h, 5);
  Rng rng(11);
  for (int round = 0; round < 10; ++round) {
    Placement p;
    p.leaf_of.resize(static_cast<std::size_t>(g.vertex_count()));
    for (auto& leaf : p.leaf_of) {
      leaf = narrow<LeafId>(
          rng.next_below(static_cast<std::uint64_t>(h.leaf_count())));
    }
    EXPECT_NEAR(placement_cost(g, h, p), placement_cost_mirror(g, h, p),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CostIdentityGrid,
    ::testing::Combine(::testing::Values(Family::StreamDag,
                                         Family::PlantedPartition,
                                         Family::Grid, Family::ScaleFree,
                                         Family::Random, Family::RandomTree),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// The DP's three core invariants across sizes and heights.

class DpInvariantGrid
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint64_t>> {};

TEST_P(DpInvariantGrid, CostAccountingStructureAndConversion) {
  const int height = std::get<0>(GetParam());
  const Vertex n = narrow<Vertex>(std::get<1>(GetParam()));
  const std::uint64_t seed = std::get<2>(GetParam());
  const Hierarchy h = exp::hierarchy_of_height(height);
  const Tree t = exp::make_tree_workload(n, h, seed, 0.6);
  TreeDpOptions opt;
  opt.units_override = exp::auto_units(t, h, 2.0);
  const TreeDpResult r = solve_rhgpt(t, h, opt);

  // (1) DP accounting equals the Definition-4 objective of its solution.
  EXPECT_NEAR(r.cost, rhgpt_cost(t, h, r.solution), 1e-9);
  // (2) The solution satisfies Definition 4 with exact capacities and is
  //     nice (Theorem 3).
  EXPECT_NO_THROW(validate_rhgpt(t, h, r.scaled, r.solution, 1.0));
  EXPECT_EQ(count_bad_sets(t, r.solution), 0);
  // (3) Conversion: cost monotone, violation within the unit-floor bound.
  const TreeAssignment a =
      convert_to_assignment(t, h, r.solution, r.scaled.units);
  EXPECT_LE(assignment_cost(t, h, a), r.cost + 1e-9);
  const auto violation = assignment_violation(t, h, a);
  for (int j = 0; j <= height; ++j) {
    EXPECT_LE(violation[static_cast<std::size_t>(j)], 2.0 * (1 + j) + 1e-9)
        << "level " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DpInvariantGrid,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(30, 70),
                       ::testing::Values(1ull, 2ull, 3ull)));

// ---------------------------------------------------------------------------
// Pruning is lossless across the grid.

class PruningGrid
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PruningGrid, DominancePruningPreservesTheOptimum) {
  const int height = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  const Hierarchy h = exp::hierarchy_of_height(height);
  const Tree t = exp::make_tree_workload(36, h, seed, 0.6);
  TreeDpOptions on;
  on.units_override = exp::auto_units(t, h, 2.0);
  TreeDpOptions off = on;
  off.prune_dominated = false;
  const TreeDpResult a = solve_rhgpt(t, h, on);
  const TreeDpResult b = solve_rhgpt(t, h, off);
  EXPECT_NEAR(a.cost, b.cost, 1e-9);
  EXPECT_LE(a.stats.feasible_states, b.stats.feasible_states);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PruningGrid,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(5ull, 6ull, 7ull)));

// ---------------------------------------------------------------------------
// Mirror-function structure is preserved by every placement the library
// produces (here: through the exact assignment path on trees).

class MirrorStructureGrid : public ::testing::TestWithParam<Family> {};

TEST_P(MirrorStructureGrid, RandomPlacementsAlwaysValidate) {
  const Hierarchy h = exp::hierarchy_two_level(2, 3);
  const Graph g = exp::make_workload(GetParam(), 30, h, 9);
  Rng rng(13);
  for (int round = 0; round < 5; ++round) {
    Placement p;
    p.leaf_of.resize(static_cast<std::size_t>(g.vertex_count()));
    for (auto& leaf : p.leaf_of) {
      leaf = narrow<LeafId>(
          rng.next_below(static_cast<std::uint64_t>(h.leaf_count())));
    }
    const MirrorFunction m = build_mirror(g, h, p);
    EXPECT_NO_THROW(validate_mirror_structure(g, h, m));
    EXPECT_NEAR(mirror_cost_literal(g, h, m), placement_cost_mirror(g, h, p),
                1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Families, MirrorStructureGrid,
                         ::testing::Values(Family::StreamDag,
                                           Family::PlantedPartition,
                                           Family::ScaleFree,
                                           Family::RandomTree));

}  // namespace
}  // namespace hgp
