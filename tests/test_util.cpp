#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>

#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace hgp {
namespace {

TEST(Check, PassingCheckDoesNothing) { HGP_CHECK(1 + 1 == 2); }

TEST(Check, FailingCheckThrowsWithExpression) {
  try {
    HGP_CHECK(2 + 2 == 5);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("2 + 2 == 5"), std::string::npos);
  }
}

TEST(Check, CheckMsgIncludesMessage) {
  try {
    HGP_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
  }
}

TEST(Narrow, RoundTripValuesPass) {
  EXPECT_EQ(narrow<std::int32_t>(std::int64_t{12345}), 12345);
  EXPECT_EQ(narrow<std::uint8_t>(255), 255);
}

TEST(Narrow, OverflowThrows) {
  EXPECT_THROW(narrow<std::int8_t>(1000), CheckError);
  EXPECT_THROW(narrow<std::uint32_t>(std::int64_t{-1}), CheckError);
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next() == b.next();
  EXPECT_LT(equal, 4);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(5);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.next_int(-2, 2);
    EXPECT_GE(x, -2);
    EXPECT_LE(x, 2);
    hit_lo |= x == -2;
    hit_hi |= x == 2;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanIsRoughlyHalf) {
  Rng rng(13);
  double s = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) s += rng.next_double();
  EXPECT_NEAR(s / n, 0.5, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(17);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng a(21), b(21);
  Rng fa = a.fork(1), fb = b.fork(1);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fa.next(), fb.next());
  Rng fa2 = a.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += fa.next() == fa2.next();
  EXPECT_LT(equal, 4);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Samples, PercentilesAreExact) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.9), 90.1, 1e-9);
}

TEST(Samples, PercentileOnEmptyThrows) {
  Samples s;
  EXPECT_THROW(s.median(), CheckError);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row().add("alpha").add(std::int64_t{1});
  t.row().add("b").add(std::int64_t{12345});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, DoublePrecisionControl) {
  Table t({"x"});
  t.row().add(3.14159, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.142"), std::string::npos);
}

TEST(Table, AddBeforeRowThrows) {
  Table t({"x"});
  EXPECT_THROW(t.add("oops"), CheckError);
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter w({"a", "b"});
  w.row().add(std::string("plain")).add(std::string("has,comma"));
  w.row().add(std::string("has\"quote")).add(std::int64_t{3});
  const std::string out = w.to_string();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Csv, HeaderFirstLine) {
  CsvWriter w({"x", "y"});
  w.row().add(1.5).add(std::int64_t{2});
  EXPECT_EQ(w.to_string().substr(0, 4), "x,y\n");
}

}  // namespace
}  // namespace hgp
