// Concurrency stress tests, written for TSan (the `tsan` preset /
// HGP_SANITIZE=thread).  Each test drives a shared structure from enough
// threads that any missing synchronization in src/parallel, src/runtime or
// src/util shows up as a data-race report rather than a flaky assertion.
// The tests also pass under plain builds, so they run in every preset of
// the sanitizer matrix (scripts/check_sanitizers.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "core/signature.hpp"
#include "core/tree_solver.hpp"
#include "decomp/builder.hpp"
#include "graph/generators.hpp"
#include "obs/event_journal.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/introspect.hpp"
#include "graph/fingerprint.hpp"
#include "graph/mutation_log.hpp"
#include "net/channel.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/coordinator.hpp"
#include "runtime/incremental.hpp"
#include "runtime/service.hpp"
#include "runtime/shard_server.hpp"
#include "runtime/solver.hpp"
#include "util/deadline.hpp"
#include "util/fault_injector.hpp"
#include "util/memory_budget.hpp"
#include "util/status.hpp"

namespace hgp {
namespace {

Graph demand_graph(std::uint64_t seed, Vertex n = 16) {
  Rng rng(seed);
  Graph g = gen::planted_partition(n, 4, 0.75, 0.05, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / static_cast<double>(n));
  return g;
}

const Hierarchy& hier() {
  static const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  return h;
}

// The signature DP's merge algebra hammered through parallel_for from every
// worker at once.  The space is shared read-only after construction; a
// stray mutable member or lazily-filled cache inside merge/lift would race
// here.
TEST(Race, ConcurrentSignatureMergesOverSharedSpace) {
  ScaledDemands scaled;
  scaled.units_per_capacity = 4;
  scaled.capacity = {48, 16, 4};
  scaled.total = 40;
  const SignatureSpace space(scaled, 2);

  ThreadPool pool(4);
  const std::size_t ids = space.size();
  std::atomic<std::size_t> merges{0};
  parallel_for(pool, 0, ids, [&](std::size_t a) {
    for (std::size_t b = 0; b < ids; b += 3) {
      for (int j1 = 0; j1 <= 2; ++j1) {
        for (int j2 = 0; j2 <= 2; ++j2) {
          const std::size_t m = space.merge(a, j1, b, j2, 2);
          if (m != SignatureSpace::npos) {
            validate_signature(space, m);
            merges.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    }
  });
  EXPECT_GT(merges.load(), 0u);
}

// Whole tree solves (signature DP + conversion) racing on one pool, the way
// runtime/solver.cpp fans the forest out.
TEST(Race, ConcurrentTreeSolvesShareOnePool) {
  const Graph g = demand_graph(7);
  const Hierarchy& h = hier();
  const FmCutter cutter;
  Rng rng(11);
  std::vector<DecompTree> forest;
  for (int i = 0; i < 4; ++i) {
    Rng child = rng.fork(static_cast<std::uint64_t>(i));
    forest.push_back(build_decomp_tree(g, child, cutter));
  }

  ThreadPool pool(4);
  std::vector<double> costs(forest.size(), 0.0);
  parallel_for(pool, 0, forest.size(), [&](std::size_t i) {
    const TreeHgpSolution sol = solve_hgpt(forest[i].tree(), h);
    costs[i] = sol.cost;
  });
  for (double c : costs) EXPECT_GE(c, 0.0);
}

// End-to-end parallel solve: the forest build and the per-tree DP solves
// all run on the pool while the main thread spins on the shared attempt
// records only after completion.
TEST(Race, ParallelForestSolveEndToEnd) {
  const Graph g = demand_graph(3);
  const Hierarchy& h = hier();
  ThreadPool pool(4);
  SolverOptions opt;
  opt.num_trees = 4;
  opt.pool = &pool;
  const HgpResult result = solve_hgp(g, h, opt);
  EXPECT_EQ(result.method, SolveMethod::kHgp);
  EXPECT_EQ(result.attempts.size(), 4u);
}

// Cancel raised from a second thread mid-solve: the token write races the
// workers' PeriodicCheck polls by design; TSan must see only the atomic.
TEST(Race, CancelMidSolveFromAnotherThread) {
  const Graph g = demand_graph(5);
  const Hierarchy& h = hier();
  for (int round = 0; round < 3; ++round) {
    ThreadPool pool(4);
    CancelToken cancel;
    SolverOptions opt;
    opt.num_trees = 6;
    opt.pool = &pool;
    opt.cancel = &cancel;
    std::thread canceller([&cancel, round] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      cancel.request_cancel();
    });
    try {
      const HgpResult result = solve_hgp(g, h, opt);
      // The solve may win the race and finish before the token flips.
      EXPECT_EQ(result.attempts.size(), 6u);
    } catch (const SolveError& e) {
      EXPECT_EQ(e.code(), StatusCode::kCancelled);
    }
    canceller.join();
  }
}

// Many threads polling one expiring Deadline through PeriodicCheck while
// parallel_for chunks unwind: deadline reads are const on an immutable
// value, so this is race-free by construction — TSan verifies.
TEST(Race, SharedDeadlineExpiryUnderParallelFor) {
  ThreadPool pool(4);
  ExecContext exec;
  exec.deadline = Deadline::after_ms(2);
  std::atomic<std::size_t> visited{0};
  try {
    parallel_for(
        pool, 0, 1u << 18,
        [&](std::size_t) {
          visited.fetch_add(1, std::memory_order_relaxed);
        },
        1, &exec);
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kDeadlineExceeded);
  }
  EXPECT_GT(visited.load(), 0u);
}

// Arm/disarm from a control thread racing workers that cross the fault
// site continuously.  Exercises the armed-count fast path, the locked
// table handoff, and the scoped disarm that must not clobber other keys.
TEST(Race, FaultInjectorArmDisarmVsConcurrentReaders) {
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> fires{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        try {
          FaultInjector::instance().on_site("race_site", 0);
        } catch (const SolveError&) {
          fires.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    FaultInjector::Fault fault;
    fault.action = FaultInjector::Action::kInfeasible;
    const FaultScope scope("race_site", 0, fault);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  // The window is narrow on a loaded box; firing at least once over 200
  // arm cycles is all the determinism this race admits.
  SUCCEED() << "observed " << fires.load() << " injected faults";
}

// Two scopes on different keys, destroyed from different threads: each
// must remove only its own fault (the old disarm-all-on-exit behaviour
// made this test's second scope silently vanish).
TEST(Race, ScopedDisarmIsKeyLocal) {
  FaultInjector::Fault fault;
  fault.action = FaultInjector::Action::kInfeasible;
  const FaultScope outer("race_outer", FaultInjector::kEveryIndex, fault);
  {
    const FaultScope inner("race_inner", 0, fault);
    EXPECT_THROW(FaultInjector::instance().on_site("race_inner", 0),
                 SolveError);
  }
  // inner's destruction must not have disarmed outer.
  EXPECT_THROW(FaultInjector::instance().on_site("race_outer", 5), SolveError);
}

// The parallel subtree DP phase: pool workers concurrently read the shared
// arena-backed signature interner (merge/lift walk its prefix-key and
// pack tables) while each bumps its own task-local workspace arena.  A
// stray shared mutable member in SignatureSpace, Arena or DenseTablePool
// would race here; the result must also be bit-identical to the
// sequential sweep.
TEST(Race, ConcurrentSubtreeDpSharesSignatureArena) {
  Rng rng(13);
  const Graph g = gen::random_tree(400, rng, gen::WeightRange{1.0, 6.0});
  Tree t = Tree::from_graph(g, 0);
  std::vector<double> d(static_cast<std::size_t>(t.leaf_count()));
  for (double& x : d) x = rng.next_double(0.005, 0.02);
  t.set_leaf_demands(d);
  const Hierarchy& h = hier();

  ThreadPool pool(4);
  TreeDpOptions opt;
  opt.units_override = 3;
  opt.pool = &pool;
  opt.min_parallel_nodes = 8;
  const TreeDpResult par = solve_rhgpt(t, h, opt);
  EXPECT_GT(par.stats.subtree_tasks, 1u);

  TreeDpOptions seq = opt;
  seq.pool = nullptr;
  const TreeDpResult ref = solve_rhgpt(t, h, seq);
  EXPECT_EQ(par.cost, ref.cost);
  EXPECT_EQ(par.stats.merge_operations, ref.stats.merge_operations);
  EXPECT_EQ(par.stats.feasible_states, ref.stats.feasible_states);
}

// Two outer threads fan subtree tasks of DIFFERENT solves into the SAME
// pool at once: tasks from both solves interleave on the workers, the
// queue-depth-gauge fan-out sizing reads racing gauge updates, and each
// solve must still reproduce its own sequential result.
TEST(Race, CompetingParallelSubtreeSolvesShareOnePool) {
  ThreadPool pool(4);
  auto make_tree = [](std::uint64_t seed) {
    Rng rng(seed);
    const Graph g = gen::random_tree(250, rng, gen::WeightRange{1.0, 6.0});
    Tree t = Tree::from_graph(g, 0);
    std::vector<double> d(static_cast<std::size_t>(t.leaf_count()));
    for (double& x : d) x = rng.next_double(0.005, 0.025);
    t.set_leaf_demands(d);
    return t;
  };
  const Tree t1 = make_tree(21);
  const Tree t2 = make_tree(22);
  const Hierarchy& h = hier();

  TreeDpOptions opt;
  opt.units_override = 3;
  opt.pool = &pool;
  opt.min_parallel_nodes = 8;
  double c1 = -1, c2 = -1;
  std::thread s1([&] { c1 = solve_rhgpt(t1, h, opt).cost; });
  std::thread s2([&] { c2 = solve_rhgpt(t2, h, opt).cost; });
  s1.join();
  s2.join();

  TreeDpOptions seq = opt;
  seq.pool = nullptr;
  EXPECT_EQ(c1, solve_rhgpt(t1, h, seq).cost);
  EXPECT_EQ(c2, solve_rhgpt(t2, h, seq).cost);
}

// Concurrent end-to-end solves of the SAME instance: the second wave is
// served by the forest LRU cache, so the shared cache's find/insert and
// the shared immutable forest snapshot get hammered from every thread.
TEST(Race, ForestCacheServesConcurrentSolves) {
  const Graph g = demand_graph(9);
  const Hierarchy& h = hier();
  std::vector<std::thread> solvers;
  std::vector<double> costs(4, -1);
  for (int r = 0; r < 4; ++r) {
    solvers.emplace_back([&, r] {
      SolverOptions opt;
      opt.num_trees = 2;
      opt.seed = 5;
      costs[static_cast<std::size_t>(r)] = solve_hgp(g, h, opt).cost;
    });
  }
  for (auto& t : solvers) t.join();
  for (double c : costs) EXPECT_EQ(c, costs[0]);
}

// Submission storm: many producer threads submit to one pool at once while
// results drain through futures.
TEST(Race, ThreadPoolConcurrentSubmitters) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  std::vector<std::thread> producers;
  producers.reserve(4);
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      std::vector<std::future<void>> futures;
      futures.reserve(50);
      for (int i = 0; i < 50; ++i) {
        futures.push_back(pool.submit([&total] {
          total.fetch_add(1, std::memory_order_relaxed);
        }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(total.load(), 200);
}

// --- Service layer under TSan ---------------------------------------------

// Submission storm racing a mid-stream drain(): submitter threads hammer
// submit while another thread flips the service into draining, so the
// admission path, the queue, and the terminal-report handoff all run
// concurrently.  Every handle must still reach a documented terminal
// state and the admission ledger must balance.
TEST(Race, ServiceConcurrentSubmitAndDrain) {
  const Graph g = demand_graph(31);
  const Hierarchy& h = hier();
  ServiceOptions sopt;
  sopt.workers = 2;
  sopt.max_queue = 4;
  SolverService service(sopt);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 10;
  std::vector<std::shared_ptr<ServiceRequest>> handles[kThreads];
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int p = 0; p < kThreads; ++p) {
    submitters.emplace_back([&, p] {
      for (int i = 0; i < kPerThread; ++i) {
        SolverOptions opt;
        opt.num_trees = 1;
        opt.seed = static_cast<std::uint64_t>(p * 100 + i);
        handles[p].push_back(service.submit(g, h, opt));
      }
    });
  }
  std::thread drainer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    service.drain();
  });
  for (auto& t : submitters) t.join();
  drainer.join();
  service.drain();  // idempotent; everything terminal afterwards

  for (const auto& wave : handles) {
    for (const auto& req : wave) {
      const RetrySolveReport& rep = req->wait();
      EXPECT_TRUE(req->done());
      // Valid inputs: every terminal status except kInvalidInput is a
      // documented outcome (ok, rejected, cancelled, degraded failure).
      EXPECT_NE(rep.status.code, StatusCode::kInvalidInput)
          << rep.status.to_string();
      if (rep.ok()) {
        EXPECT_TRUE(rep.has_result);
        EXPECT_EQ(rep.result.placement.leaf_of.size(),
                  static_cast<std::size_t>(g.vertex_count()));
      }
    }
  }
  const SolverService::Stats s = service.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.submitted, s.admitted + s.rejected());
  EXPECT_EQ(s.completed, s.admitted);
}

// Watchdog with a hair-trigger timeout racing requests that complete in
// about the same time: the per-attempt token swap, the watchdog's
// cancelled-classification flag, and normal completion all collide.  A
// request must end kOk (it won the race, possibly after retries) or
// kCancelled (the watchdog won and the retry budget ran out) — nothing
// else, and never a torn report.
TEST(Race, ServiceWatchdogCancelRacesCompletion) {
  const Graph g = demand_graph(33);
  const Hierarchy& h = hier();
  ServiceOptions sopt;
  sopt.workers = 2;
  sopt.max_queue = 32;
  sopt.retry.max_retries = 2;
  sopt.retry.backoff_base_ms = 0;
  sopt.retry.backoff_max_ms = 1;
  sopt.stuck_after_ms = 1;  // same order as a small solve's runtime
  sopt.watchdog_poll_ms = 1;
  SolverService service(sopt);

  std::vector<std::shared_ptr<ServiceRequest>> handles;
  handles.reserve(16);
  for (int i = 0; i < 16; ++i) {
    SolverOptions opt;
    opt.num_trees = 1;
    opt.seed = static_cast<std::uint64_t>(i);
    handles.push_back(service.submit(g, h, opt));
  }
  service.drain();

  for (const auto& req : handles) {
    const RetrySolveReport& rep = req->wait();
    EXPECT_TRUE(req->done());
    EXPECT_TRUE(rep.status.code == StatusCode::kOk ||
                rep.status.code == StatusCode::kCancelled)
        << rep.status.to_string();
    EXPECT_LE(rep.retries_used, sopt.retry.max_retries);
    if (rep.ok()) {
      EXPECT_TRUE(rep.has_result);
    }
  }
  // How often the watchdog wins is timing-dependent; the invariant under
  // test is the absence of races and of undocumented statuses.
  SUCCEED() << "watchdog cancels: " << service.stats().watchdog_cancels;
}

// Budget accounting under parallel DP: concurrent solves sharing one inner
// pool charge and release the global MemoryBudget from every worker at
// once (arena chunks, dense-table pool).  After the storm, usage must
// return exactly to the post-warmup baseline — a lost or doubled atomic
// update would leave a permanent drift.  Baseline-relative because the
// forest cache legitimately retains its charges across solves.
TEST(Race, ServiceBudgetAccountingUnderParallelDp) {
  const Graph g = demand_graph(35, 32);
  const Hierarchy& h = hier();
  MemoryBudget& budget = MemoryBudget::global();

  SolverOptions warm;
  warm.num_trees = 2;
  warm.seed = 5;
  solve_hgp(g, h, warm);  // populate the forest cache for this key
  const std::size_t used0 = budget.used();

  const std::size_t old_limit = budget.limit();
  budget.set_limit(used0 + (std::size_t{512} << 20));  // generous headroom

  ThreadPool pool(4);
  std::vector<std::thread> solvers;
  std::vector<double> costs(4, -1);
  for (int r = 0; r < 4; ++r) {
    solvers.emplace_back([&, r] {
      for (int round = 0; round < 3; ++round) {
        SolverOptions opt;
        opt.num_trees = 2;
        opt.seed = 5;  // cache hit: no new retained charges
        opt.pool = &pool;
        costs[static_cast<std::size_t>(r)] = solve_hgp(g, h, opt).cost;
      }
    });
  }
  for (auto& t : solvers) t.join();
  budget.set_limit(old_limit);

  for (double c : costs) EXPECT_EQ(c, costs[0]);
  // Every per-solve charge (arenas, table pools) must have been released.
  EXPECT_EQ(budget.used(), used0);
}

// Submit / drain / watchdog wakeups hammered from every direction at once.
// The storm drives all three service condition variables (work_cv_,
// idle_cv_, watchdog_cv_) plus every per-request cv_ concurrently.  TSan
// cannot see a lost wakeup — a predicate stored outside the waiter's mutex
// races nothing it tracks — so the failure mode this case targets is a
// hang: a wait() or drain() that never returns because its notify landed
// in the check-then-block window.
TEST(Race, ServiceWakeupStormSubmitDrainWatchdog) {
  const Graph g = demand_graph(77, 16);
  const Hierarchy& h = hier();

  for (int round = 0; round < 3; ++round) {
    ServiceOptions sopt;
    sopt.workers = 3;
    sopt.max_queue = 256;
    sopt.retry.max_retries = 1;
    sopt.retry.backoff_base_ms = 0.1;
    sopt.stuck_after_ms = 2000;  // watchdog polls, nothing actually sticks
    sopt.watchdog_poll_ms = 1;
    SolverService service(sopt);

    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 8;
    std::vector<std::vector<std::shared_ptr<ServiceRequest>>> handles(
        kSubmitters);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        auto& mine = handles[static_cast<std::size_t>(t)];
        for (int i = 0; i < kPerThread; ++i) {
          SolverOptions opt;
          opt.num_trees = 1;
          opt.seed = static_cast<std::uint64_t>(t * 100 + i);
          mine.push_back(service.submit(g, h, opt));
          if (i % 3 == 0) std::this_thread::yield();
        }
        // A cancel racing the retry/backoff machinery: exercises the
        // store-under-lock + notify-after-unlock path in cancel() against
        // a concurrent wait().
        mine.front()->cancel();
        for (auto& r : mine) r->wait();
      });
    }
    for (auto& t : submitters) t.join();
    // Drain races the tail of the last completions; it must observe
    // quiescence via idle_cv_, not by luck.
    service.drain();
    for (auto& per : handles) {
      for (auto& r : per) EXPECT_TRUE(r->done());
    }
  }
}

// The thread pool's two wakeup paths — submit's notify_one and the
// destructor's stop broadcast — churned in a tight loop.  Each round ends
// with idle workers blocked on the queue cv; a stop_ store that escaped
// the mutex (or a dropped broadcast) would leave a worker blocked forever
// and hang the join in ~ThreadPool.
TEST(Race, ThreadPoolWakeupChurnSubmitVsShutdown) {
  std::atomic<long> ran{0};
  constexpr int kRounds = 25;
  constexpr int kSubmitters = 3;
  constexpr int kJobs = 40;
  for (int round = 0; round < kRounds; ++round) {
    ThreadPool pool(3);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&] {
        std::vector<std::future<void>> futures;
        futures.reserve(kJobs);
        for (int i = 0; i < kJobs; ++i) {
          futures.push_back(pool.submit(
              [&] { ran.fetch_add(1, std::memory_order_relaxed); }));
        }
        for (auto& f : futures) f.get();
      });
    }
    for (auto& t : submitters) t.join();
  }
  EXPECT_EQ(ran.load(std::memory_order_relaxed),
            static_cast<long>(kRounds) * kSubmitters * kJobs);
}

// --- Incremental churn under TSan ------------------------------------------

/// Session base for the churn races: demands round to one unit each at
/// units_override=3 (d ≤ 1/3), so drift-only schedules can never push the
/// rounded instance over hier()'s 4x3-unit capacity — every resolve ends
/// kOk or, having lost the commit race, kInvalidInput.
std::shared_ptr<const Graph> churn_base(std::uint64_t seed) {
  Rng rng(seed);
  Graph g = gen::planted_partition(10, 4, 0.75, 0.1, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 0.25);
  return std::make_shared<const Graph>(std::move(g));
}

/// Drift-only churn mix (volume reweights + demand nudges below the 1/3
/// rounding step) for the service races: keeps the instance size and
/// feasibility fixed while still invalidating subtrees.
gen::ChurnOptions race_drift() {
  gen::ChurnOptions copt;
  copt.ops = 2;
  copt.w_add_vertex = 0;
  copt.w_remove_vertex = 0;
  copt.w_add_edge = 0;
  copt.w_remove_edge = 0;
  copt.demand_lo = 0.05;
  copt.demand_hi = 0.30;
  return copt;
}

// Concurrent mutation submission against one incremental session while its
// resolves are in flight: submitter threads race begin_batch (snapshot
// read), the optimistic stale check, and the atomic commit under the
// session mutex, with plain solves of another instance interleaving on the
// same workers.  Losing threads must see a terminal kInvalidInput and
// succeed after rebasing; the committed chain must stay consistent (the
// session's last placement always matches its current graph).
TEST(Race, ServiceConcurrentResolveBatchesRebaseOnStale) {
  const auto base = churn_base(91);
  const Hierarchy& h = hier();
  ServiceOptions sopt;
  sopt.workers = 2;
  sopt.max_queue = 64;
  SolverService service(sopt);
  IncrementalOptions iopt;
  iopt.num_trees = 2;
  iopt.units_override = 3;
  iopt.seed = 17;
  const auto session = service.open_incremental(base, h, iopt);

  constexpr int kThreads = 3;
  constexpr int kBatches = 4;
  std::atomic<int> committed{0};
  std::atomic<int> stale{0};
  std::atomic<int> unexpected{0};
  std::vector<std::thread> churners;
  churners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    churners.emplace_back([&, t] {
      Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int b = 0; b < kBatches; ++b) {
        // Rebase loop: each lost commit race re-records the batch against
        // the newly committed snapshot (bounded — every round commits
        // someone, so kThreads rounds suffice; 16 is slack).
        for (int attempt = 0; attempt < 16; ++attempt) {
          const auto log = session->begin_batch();
          gen::churn(*log, race_drift(), rng);
          if (log->empty()) break;
          const auto req = service.submit_resolve(session, log);
          const RetrySolveReport& rep = req->wait();
          if (rep.ok()) {
            committed.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          if (rep.status.code == StatusCode::kInvalidInput) {
            stale.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          unexpected.fetch_add(1, std::memory_order_relaxed);
          ADD_FAILURE() << "unexpected resolve status: "
                        << rep.status.to_string();
          break;
        }
      }
    });
  }
  // Plain solves of a different instance share the same worker pool the
  // whole time, so resolve requests and classic requests interleave.
  const Graph other = demand_graph(93);
  std::vector<std::shared_ptr<ServiceRequest>> plain;
  plain.reserve(8);
  for (int i = 0; i < 8; ++i) {
    SolverOptions opt;
    opt.num_trees = 1;
    opt.seed = static_cast<std::uint64_t>(i);
    plain.push_back(service.submit(other, h, opt));
  }
  for (auto& t : churners) t.join();
  service.drain();

  EXPECT_EQ(committed.load(), kThreads * kBatches);
  EXPECT_EQ(unexpected.load(), 0);
  for (const auto& req : plain) {
    EXPECT_TRUE(req->wait().ok()) << req->wait().status.to_string();
  }
  // The committed chain is self-consistent after the storm.
  const HgpResult& last = session->last();
  EXPECT_EQ(last.placement.leaf_of.size(),
            static_cast<std::size_t>(session->graph()->vertex_count()));
  EXPECT_GE(service.stats().resolves,
            static_cast<std::uint64_t>(committed.load()));
  SUCCEED() << committed.load() << " commits, " << stale.load()
            << " stale rejections";
}

// Warm-start checkpoint recovery racing a churn batch: a service restart
// recovers a durable spill while resolve batches hammer an incremental
// session on the same workers.  The resumed request must still finish from
// the recovered trees (not re-solve), the churn batches must all commit,
// and TSan watches the spill index, the checkpoint store and the session
// state collide.
TEST(Race, ServiceSpillRecoveryRacesResolveBatches) {
  const Graph other = demand_graph(95);
  const Hierarchy& h = hier();
  std::string spill_dir;
  {
    std::string templ =
        (std::filesystem::temp_directory_path() / "hgp-race-spill-XXXXXX")
            .string();
    ASSERT_NE(::mkdtemp(templ.data()), nullptr);
    spill_dir = templ;
  }

  ServiceOptions sopt;
  sopt.workers = 2;
  sopt.max_queue = 64;
  sopt.retry.max_retries = 0;  // first failure is terminal → one spill
  sopt.spill_dir = spill_dir;
  SolverOptions opt;
  opt.num_trees = 2;
  opt.seed = 95;
  opt.fallback = FallbackPolicy::kNone;

  // "Process" 1: every tree completes, then the finalize boundary dies —
  // the checkpoint (all trees) spills durably.
  {
    FaultInjector::Fault fault;
    fault.action = FaultInjector::Action::kThrow;
    const FaultScope finalize("solve_finalize", 0, fault);
    SolverService crashing(sopt);
    EXPECT_FALSE(crashing.submit(other, h, opt)->wait().ok());
    EXPECT_EQ(crashing.stats().checkpoint_spills, 1u);
  }

  // "Process" 2: the restart indexes the spill; the matching request and a
  // churn-batch storm run concurrently.
  {
    SolverService restarted(sopt);
    IncrementalOptions iopt;
    iopt.num_trees = 2;
    iopt.units_override = 3;
    iopt.seed = 19;
    const auto session = restarted.open_incremental(churn_base(97), h, iopt);

    std::atomic<int> committed{0};
    std::thread churner([&] {
      Rng rng(7);
      for (int b = 0; b < 6; ++b) {
        for (int attempt = 0; attempt < 16; ++attempt) {
          const auto log = session->begin_batch();
          gen::churn(*log, race_drift(), rng);
          if (log->empty()) break;
          const RetrySolveReport& rep =
              restarted.submit_resolve(session, log)->wait();
          if (rep.ok()) {
            committed.fetch_add(1, std::memory_order_relaxed);
            break;
          }
          EXPECT_EQ(rep.status.code, StatusCode::kInvalidInput)
              << rep.status.to_string();
        }
      }
    });
    const auto resumed = restarted.submit(other, h, opt);
    const RetrySolveReport& rep = resumed->wait();
    churner.join();
    restarted.drain();

    ASSERT_TRUE(rep.ok()) << rep.status.to_string();
    ASSERT_TRUE(rep.has_result);
    // Every tree came from the recovered checkpoint (warm start).
    EXPECT_EQ(rep.result.telemetry.checkpoint_trees, opt.num_trees);
    EXPECT_EQ(restarted.stats().checkpoint_recovered, 1u);
    EXPECT_EQ(committed.load(), 6);
  }
  std::error_code ec;
  std::filesystem::remove_all(spill_dir, ec);
}

// --- Observability layer under TSan ----------------------------------------

// Journal writers on every thread racing flight-recorder dumps and both
// reader paths (the sorting snapshot and the signal-safe ring copy).  The
// journal's claim is lock-free writes with acquire-published reads; a
// non-atomic slot field or a missed release on the ring head would race
// here.  The lap-detection discard makes counts approximate, so the
// assertions are sanity bounds, not totals.
TEST(Race, JournalConcurrentWritersVsFlightDump) {
  obs::EventJournal::global().clear();
  // Fixed work per writer (not run-until-told-to-stop): the dump loop
  // below spins until every writer finished, so the readers and writers
  // overlap regardless of how late the OS schedules the new threads.
  constexpr std::uint64_t kPerWriter = 20000;
  std::atomic<int> writers_done{0};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 0; i < kPerWriter; ++i) {
        obs::EventJournal::global().record(
            obs::EventKind::kCheckpointRecord,
            static_cast<std::uint64_t>(w) + 1, 1,
            static_cast<std::int64_t>(i), 0);
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }
  std::vector<obs::JournalEvent> scratch(
      obs::EventJournal::kMaxSignalEvents);
  int rounds = 0;
  // A few extra rounds after the last writer exits read the quiesced tail.
  for (int tail = 0; writers_done.load(std::memory_order_acquire) < 4 ||
                     tail++ < 3;
       ++rounds) {
    std::ostringstream os;
    obs::FlightRecorder::global().write_json(os, "race test");
    EXPECT_NE(os.str().find("\"events\": ["), std::string::npos);
    const std::size_t n = obs::EventJournal::global().copy_events_signal_safe(
        scratch.data(), scratch.size());
    EXPECT_LE(n, scratch.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(scratch[i].kind, obs::EventKind::kCheckpointRecord);
      EXPECT_GE(scratch[i].request_id, 1u);
      EXPECT_LE(scratch[i].request_id, 4u);
    }
  }
  for (auto& t : writers) t.join();
  EXPECT_GT(rounds, 0);
  EXPECT_GE(obs::EventJournal::global().recorded(), 4 * kPerWriter);
  obs::EventJournal::global().clear();
}

#if HGP_OBS_ENABLED
// Endpoint scrapes racing a submit/drain/watchdog storm: the server thread
// walks live service state (write_requests_json nests the request locks
// under the service lock) while workers mutate it, the watchdog scans it,
// and submitters grow it.  Scrapes must stay well-formed the whole time —
// the last scrape runs after drain, against a quiescent service.
TEST(Race, IntrospectScrapeDuringServiceStorm) {
  const Graph g = demand_graph(41);
  const Hierarchy& h = hier();
  ServiceOptions sopt;
  sopt.workers = 2;
  sopt.max_queue = 64;
  sopt.retry.max_retries = 1;
  sopt.retry.backoff_base_ms = 0.1;
  sopt.stuck_after_ms = 1;  // watchdog fires into the storm
  sopt.watchdog_poll_ms = 1;
  sopt.obs_socket =
      (std::filesystem::temp_directory_path() /
       ("hgp-race-" + std::to_string(::getpid()) + ".sock"))
          .string();
  SolverService service(sopt);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> scrapes_ok{0};
  std::thread scraper([&] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string metrics;
      std::string requests;
      const bool ok =
          obs::introspect_fetch(sopt.obs_socket, "/metrics", &metrics).ok() &&
          obs::introspect_fetch(sopt.obs_socket, "/requests", &requests).ok();
      if (ok) {
        EXPECT_NE(metrics.find("# TYPE"), std::string::npos);
        EXPECT_NE(requests.find("\"queue_depth\":"), std::string::npos);
        scrapes_ok.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 8;
  std::vector<std::vector<std::shared_ptr<ServiceRequest>>> handles(
      kSubmitters);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      auto& mine = handles[static_cast<std::size_t>(t)];
      for (int i = 0; i < kPerThread; ++i) {
        SolverOptions opt;
        opt.num_trees = 1;
        opt.seed = static_cast<std::uint64_t>(t * 100 + i);
        mine.push_back(service.submit(g, h, opt));
      }
      for (auto& r : mine) r->wait();
    });
  }
  for (auto& t : submitters) t.join();
  service.drain();

  // One scrape against the drained service must succeed deterministically.
  std::string final_requests;
  EXPECT_TRUE(
      obs::introspect_fetch(sopt.obs_socket, "/requests", &final_requests)
          .ok());
  EXPECT_NE(final_requests.find("\"draining\":true"), std::string::npos);
  stop.store(true, std::memory_order_release);
  scraper.join();
  for (auto& per : handles) {
    for (auto& r : per) EXPECT_TRUE(r->done());
  }
  SUCCEED() << scrapes_ok.load() << " clean scrapes mid-storm";
}
#endif  // HGP_OBS_ENABLED

// ---------------------------------------------------------------------------
// Sharded-coordinator bookkeeping under TSan.  The coordinator's mutable
// state (shard states, batch epochs, lease clocks, the report) is touched by
// one reader thread per shard, the supervision loop, and the caller — these
// tests drive all of them at once so any missing lock shows up as a report.

struct RaceShardThread {
  std::thread thread;
  ShardServerReport report;
  ~RaceShardThread() {
    if (thread.joinable()) thread.join();
  }
};

net::Socket race_start_shard(std::deque<RaceShardThread>& pool,
                             ShardServerOptions opt = {}) {
  auto [mine, theirs] = net::socket_pair();
  RaceShardThread& sh = pool.emplace_back();
  sh.thread = std::thread([&sh, sock = std::move(theirs), opt]() mutable {
    net::FrameChannel ch(std::move(sock));
    sh.report = run_shard_server(ch, opt);
  });
  return std::move(mine);
}

// Many shards beating fast while batches flow: reader threads update lease
// clocks and accept results concurrently with the supervision loop's lease
// scan and assignment pass.
TEST(Race, CoordinatorConcurrentHeartbeatsAndResults) {
  const Graph g = demand_graph(31, 20);
  SolverOptions opt;
  opt.num_trees = 6;
  opt.seed = 31;

  std::deque<RaceShardThread> pool;
  CoordinatorOptions copt;
  copt.heartbeat_ms = 1;  // heartbeat storm: every shard beats ~1kHz
  ShardCoordinator coord(g, hier(), opt, copt);
  ShardServerOptions sopt;
  sopt.heartbeat_ms = 1;
  for (int i = 0; i < 4; ++i) coord.adopt_shard(race_start_shard(pool, sopt));
  const HgpResult got = coord.solve();

  const HgpResult want = solve_hgp(g, hier(), opt);
  EXPECT_EQ(got.placement.leaf_of, want.placement.leaf_of);
  EXPECT_EQ(coord.report().trees_from_shards, 6);
}

// Lease expiry + reassignment racing live result delivery: slow shards
// (gated trees) with a tiny lease force the supervision loop to declare
// deaths and bump epochs while reader threads are mid-accept.
TEST(Race, CoordinatorReassignmentRacesResultDelivery) {
  const Graph g = demand_graph(32, 20);
  SolverOptions opt;
  opt.num_trees = 8;
  opt.seed = 32;

  std::deque<RaceShardThread> pool;
  CoordinatorOptions copt;
  copt.lease_ms = 30;  // tight: honest-but-slow shards WILL lose leases
  ShardCoordinator coord(g, hier(), opt, copt);

  // Half the fleet heartbeats normally; the other half stalls each tree
  // past the lease WITHOUT beating (heartbeat thread suppressed by a huge
  // interval), so their batches are reassigned and their eventual results
  // arrive as zombies.
  ShardServerOptions honest;
  honest.heartbeat_ms = 5;
  ShardServerOptions laggard;
  laggard.heartbeat_ms = 60000;
  laggard.on_tree_start = [](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  };
  for (int i = 0; i < 2; ++i) coord.adopt_shard(race_start_shard(pool, honest));
  for (int i = 0; i < 2; ++i)
    coord.adopt_shard(race_start_shard(pool, laggard));
  const HgpResult got = coord.solve();

  const HgpResult want = solve_hgp(g, hier(), opt);
  EXPECT_EQ(got.placement.leaf_of, want.placement.leaf_of);
  EXPECT_EQ(std::memcmp(&got.cost, &want.cost, sizeof got.cost), 0);
  EXPECT_EQ(coord.report().batches_completed, 8);
}

// Caller cancellation from another thread while shards stream results: the
// cancel path (supervise throws -> cleanup shuts channels -> readers
// unwind) must not race teardown of the shard table.
TEST(Race, CoordinatorCancelRacesShardTraffic) {
  const Graph g = demand_graph(33, 20);
  CancelToken cancel;
  SolverOptions opt;
  opt.num_trees = 8;
  opt.seed = 33;
  opt.cancel = &cancel;

  std::deque<RaceShardThread> pool;
  CoordinatorOptions copt;
  ShardCoordinator coord(g, hier(), opt, copt);
  ShardServerOptions sopt;
  sopt.heartbeat_ms = 1;
  sopt.on_tree_start = [](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  for (int i = 0; i < 3; ++i) coord.adopt_shard(race_start_shard(pool, sopt));

  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    cancel.request_cancel();
  });
  try {
    (void)coord.solve();
    // Legal: every batch may have finished before the cancel landed.
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCancelled);
  }
  canceller.join();
}

}  // namespace
}  // namespace hgp
