#include <gtest/gtest.h>

#include "core/signature.hpp"

namespace hgp {
namespace {

ScaledDemands make_scaled(std::vector<DemandUnits> capacity,
                          DemandUnits total) {
  ScaledDemands sd;
  sd.capacity = std::move(capacity);
  sd.total = total;
  sd.units_per_capacity = sd.capacity.back();
  return sd;
}

TEST(SignatureSpace, CountsTuplesTimesPresenceH1) {
  // h=1, bound 5 → demand tuples (0),(1),…,(5); presence ∈ {0,1}.
  const ScaledDemands sd = make_scaled({20, 5}, 100);
  const SignatureSpace space(sd, 1);
  EXPECT_EQ(space.size(), 6u * 2u);
}

TEST(SignatureSpace, CountsTuplesTimesPresenceH2) {
  // h=2, bounds (3, 2): monotone tuples = 9 (see the enumeration in the
  // merge tests); presence slots = 3.
  const ScaledDemands sd = make_scaled({12, 3, 2}, 100);
  const SignatureSpace space(sd, 2);
  EXPECT_EQ(space.size(), 9u * 3u);
}

TEST(SignatureSpace, TotalDemandTightensBounds) {
  const ScaledDemands sd = make_scaled({40, 10}, 4);
  const SignatureSpace space(sd, 1);
  EXPECT_EQ(space.level_bound(1), 4);
}

TEST(SignatureSpace, IdOfRoundTripsThroughAccessors) {
  const ScaledDemands sd = make_scaled({24, 6, 3}, 100);
  const SignatureSpace space(sd, 2);
  const std::size_t id = space.id_of({4, 2}, 2);
  ASSERT_NE(id, SignatureSpace::npos);
  EXPECT_EQ(space.level(id, 1), 4);
  EXPECT_EQ(space.level(id, 2), 2);
  EXPECT_EQ(space.present(id), 2);
  EXPECT_EQ(space.support(id), 2);
}

TEST(SignatureSpace, IdOfRejectsInvalidTuples) {
  const ScaledDemands sd = make_scaled({24, 6, 3}, 100);
  const SignatureSpace space(sd, 2);
  EXPECT_EQ(space.id_of({2, 3}, 2), SignatureSpace::npos);   // increasing
  EXPECT_EQ(space.id_of({7, 1}, 2), SignatureSpace::npos);   // over capacity
  EXPECT_EQ(space.id_of({-1, -1}, 2), SignatureSpace::npos); // negative
  EXPECT_EQ(space.id_of({1}, 1), SignatureSpace::npos);      // wrong arity
  // Presence below the demand support is inconsistent.
  EXPECT_EQ(space.id_of({2, 1}, 1), SignatureSpace::npos);
  EXPECT_EQ(space.id_of({2, 0}, 0), SignatureSpace::npos);
  EXPECT_EQ(space.id_of({0, 0}, 3), SignatureSpace::npos);   // p > h
}

TEST(SignatureSpace, PhantomPresenceIsDistinctState) {
  // D = (0,0) with p ∈ {0,1,2} are three different signatures: absent,
  // region at level 1 only, regions at both levels.
  const ScaledDemands sd = make_scaled({24, 6, 3}, 100);
  const SignatureSpace space(sd, 2);
  const auto absent = space.id_of({0, 0}, 0);
  const auto shallow = space.id_of({0, 0}, 1);
  const auto deep = space.id_of({0, 0}, 2);
  ASSERT_NE(absent, SignatureSpace::npos);
  ASSERT_NE(shallow, SignatureSpace::npos);
  ASSERT_NE(deep, SignatureSpace::npos);
  EXPECT_NE(absent, shallow);
  EXPECT_NE(shallow, deep);
  EXPECT_EQ(space.zero_id(), absent);
}

TEST(SignatureSpace, UniformIdIsFullyPresent) {
  const ScaledDemands sd = make_scaled({24, 6, 3}, 100);
  const SignatureSpace space(sd, 2);
  const auto u2 = space.uniform_id(2);
  ASSERT_NE(u2, SignatureSpace::npos);
  EXPECT_EQ(space.level(u2, 1), 2);
  EXPECT_EQ(space.level(u2, 2), 2);
  EXPECT_EQ(space.present(u2), 2);
  EXPECT_EQ(space.uniform_id(5), SignatureSpace::npos);  // exceeds level-2 cap
}

TEST(SignatureSpace, MergeAddsKeptLevels) {
  const ScaledDemands sd = make_scaled({40, 10, 5}, 100);
  const SignatureSpace space(sd, 2);
  const auto a = space.id_of({3, 2}, 2);
  const auto b = space.id_of({4, 1}, 2);
  ASSERT_NE(a, SignatureSpace::npos);
  ASSERT_NE(b, SignatureSpace::npos);
  // Keep both children fully: sums at both levels.
  const auto full = space.merge(a, 2, b, 2, 2);
  ASSERT_NE(full, SignatureSpace::npos);
  EXPECT_EQ(space.level(full, 1), 7);
  EXPECT_EQ(space.level(full, 2), 3);
  // Cut child b above level 1: its level-2 region closes.
  const auto partial = space.merge(a, 2, b, 1, 2);
  ASSERT_NE(partial, SignatureSpace::npos);
  EXPECT_EQ(space.level(partial, 1), 7);
  EXPECT_EQ(space.level(partial, 2), 2);
  // Cut child b everywhere.
  const auto solo = space.merge(a, 2, b, 0, 2);
  ASSERT_NE(solo, SignatureSpace::npos);
  EXPECT_EQ(space.level(solo, 1), 3);
  EXPECT_EQ(space.level(solo, 2), 2);
}

TEST(SignatureSpace, MergePresenceRules) {
  const ScaledDemands sd = make_scaled({40, 10, 5}, 100);
  const SignatureSpace space(sd, 2);
  const auto a = space.id_of({3, 2}, 2);
  const auto b = space.id_of({4, 0}, 1);
  // Parent presence below a kept child's presence is invalid.
  EXPECT_EQ(space.merge(a, 2, b, 1, 1), SignatureSpace::npos);
  // Kept prefixes: a fully (p=2), b at level 1 → base 2.
  const auto m = space.merge(a, 2, b, 1, 2);
  ASSERT_NE(m, SignatureSpace::npos);
  EXPECT_EQ(space.level(m, 1), 7);
  EXPECT_EQ(space.level(m, 2), 2);
  EXPECT_EQ(space.present(m), 2);
  // Phantom extension: both children cut entirely, parent presence 2.
  const auto ph = space.merge(a, 0, b, 0, 2);
  ASSERT_NE(ph, SignatureSpace::npos);
  EXPECT_EQ(space.level(ph, 1), 0);
  EXPECT_EQ(space.present(ph), 2);
}

TEST(SignatureSpace, MergeDetectsCapacityOverflow) {
  const ScaledDemands sd = make_scaled({8, 4, 2}, 100);
  const SignatureSpace space(sd, 2);
  const auto a = space.id_of({3, 1}, 2);
  const auto b = space.id_of({2, 2}, 2);
  // level-1 sum 5 > capacity 4 → invalid.
  EXPECT_EQ(space.merge(a, 2, b, 2, 2), SignatureSpace::npos);
  // but cutting b at level 0 drops its contribution.
  EXPECT_NE(space.merge(a, 2, b, 0, 2), SignatureSpace::npos);
}

TEST(SignatureSpace, LiftMasksAboveCutLevel) {
  const ScaledDemands sd = make_scaled({40, 10, 5}, 100);
  const SignatureSpace space(sd, 2);
  const auto a = space.id_of({4, 3}, 2);
  const auto lifted = space.lift(a, 1, 1);
  ASSERT_NE(lifted, SignatureSpace::npos);
  EXPECT_EQ(space.level(lifted, 1), 4);
  EXPECT_EQ(space.level(lifted, 2), 0);
  EXPECT_EQ(space.present(lifted), 1);
  // Phantom extension above the kept prefix.
  const auto ghost = space.lift(a, 0, 2);
  ASSERT_NE(ghost, SignatureSpace::npos);
  EXPECT_EQ(space.level(ghost, 1), 0);
  EXPECT_EQ(space.present(ghost), 2);
  // Presence below the kept prefix is invalid.
  EXPECT_EQ(space.lift(a, 2, 1), SignatureSpace::npos);
}

TEST(SignatureSpace, MergeIsCommutative) {
  const ScaledDemands sd = make_scaled({40, 10, 5}, 100);
  const SignatureSpace space(sd, 2);
  for (std::size_t a = 0; a < space.size(); a += 5) {
    for (std::size_t b = 0; b < space.size(); b += 5) {
      for (int j1 = 0; j1 <= 2; ++j1) {
        for (int j2 = 0; j2 <= 2; ++j2) {
          EXPECT_EQ(space.merge(a, j1, b, j2, 2),
                    space.merge(b, j2, a, j1, 2));
        }
      }
    }
  }
}

TEST(SignatureSpace, OversizedSpaceRejected) {
  ScaledDemands sd =
      make_scaled({1 << 20, 1 << 20, 1 << 20, 1 << 20}, 1 << 30);
  EXPECT_THROW(SignatureSpace(sd, 3), CheckError);
}

}  // namespace
}  // namespace hgp
