// Coordinator supervision tests: lease expiry, crash reassignment, zombie
// fencing, all-shards-lost degradation and caller cancellation, all driven
// with REAL shard servers on in-process threads plus scripted misbehaving
// peers (src/runtime/coordinator.hpp, docs/RESILIENCE.md).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <deque>
#include <functional>
#include <thread>

#include "graph/fingerprint.hpp"
#include "graph/generators.hpp"
#include "net/channel.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "obs/event_journal.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/coordinator.hpp"
#include "runtime/shard_server.hpp"
#include "util/deadline.hpp"
#include "util/prng.hpp"
#include "util/sync.hpp"

namespace hgp {
namespace {

Graph workload(std::uint64_t seed, Vertex n = 20) {
  Rng rng(seed);
  Graph g = gen::planted_partition(n, 4, 0.75, 0.05, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / static_cast<double>(n));
  return g;
}

const Hierarchy& hier() {
  static const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  return h;
}

SolverOptions base_options(std::uint64_t seed, int trees = 4) {
  SolverOptions opt;
  opt.num_trees = trees;
  opt.epsilon = 0.5;
  opt.seed = seed;
  return opt;
}

/// The coordinated result must be indistinguishable from the single-process
/// one at the bit level — costs compared as bit patterns, not with an
/// epsilon.
void expect_bit_identical(const HgpResult& got, const HgpResult& want) {
  EXPECT_EQ(std::memcmp(&got.cost, &want.cost, sizeof got.cost), 0)
      << got.cost << " vs " << want.cost;
  EXPECT_EQ(got.placement.leaf_of, want.placement.leaf_of);
  EXPECT_EQ(got.best_tree, want.best_tree);
  EXPECT_EQ(got.method, want.method);
  ASSERT_EQ(got.tree_costs.size(), want.tree_costs.size());
  for (std::size_t i = 0; i < got.tree_costs.size(); ++i) {
    EXPECT_EQ(std::memcmp(&got.tree_costs[i], &want.tree_costs[i],
                          sizeof(double)),
              0)
        << "tree " << i;
  }
}

/// A real shard server running on an in-process thread; the coordinator
/// adopts the other end of the socket pair.
struct ShardThread {
  std::thread thread;
  ShardServerReport report;

  ~ShardThread() {
    if (thread.joinable()) thread.join();
  }
};

net::Socket start_shard(std::deque<ShardThread>& pool,
                        ShardServerOptions opt = {}) {
  auto [mine, theirs] = net::socket_pair();
  ShardThread& sh = pool.emplace_back();
  sh.thread = std::thread([&sh, sock = std::move(theirs), opt]() mutable {
    net::FrameChannel ch(std::move(sock));
    sh.report = run_shard_server(ch, opt);
  });
  return std::move(mine);
}

/// A scripted peer that completes the handshake + job phase like a real
/// shard, then runs `script` with the channel — the building block for
/// crash / hang / zombie behaviours no honest shard exhibits.
net::Socket start_scripted_shard(
    std::deque<ShardThread>& pool, const Graph& g,
    std::function<void(net::FrameChannel&)> script) {
  auto [mine, theirs] = net::socket_pair();
  const std::uint64_t fp = graph_fingerprint(g);
  ShardThread& sh = pool.emplace_back();
  sh.thread = std::thread(
      [&sh, sock = std::move(theirs), fp, script = std::move(script)]() mutable {
        try {
          net::FrameChannel ch(std::move(sock));
          const Deadline d = Deadline::after_ms(20000);
          net::handshake_server(ch, d);
          auto job_frame = ch.recv(d);
          ASSERT_TRUE(job_frame.has_value());
          const net::JobMsg job = net::decode_job(job_frame->payload);
          net::JobAckMsg ack;
          ack.graph_fingerprint = fp;
          ack.num_trees = job.num_trees;
          ch.send(net::kMsgJobAck, net::encode_job_ack(ack), d);
          script(ch);
        } catch (...) {
          // A scripted peer dying early just looks like one more crash to
          // the coordinator, which is the behaviour under test anyway.
        }
      });
  return std::move(mine);
}

TEST(Coordinator, MatchesSingleProcessBitForBit) {
  const Graph g = workload(11);
  const HgpResult baseline = solve_hgp(g, hier(), base_options(11));

  std::deque<ShardThread> pool;
  CoordinatorOptions copt;
  ShardCoordinator coord(g, hier(), base_options(11), copt);
  coord.adopt_shard(start_shard(pool));
  coord.adopt_shard(start_shard(pool));
  const HgpResult got = coord.solve();

  expect_bit_identical(got, baseline);
  EXPECT_EQ(coord.report().shards_up, 2);
  EXPECT_EQ(coord.report().shards_lost, 0);
  EXPECT_EQ(coord.report().zombies_fenced, 0);
  EXPECT_EQ(coord.report().trees_from_shards, 4);
  EXPECT_FALSE(coord.report().degraded_inprocess);
  EXPECT_EQ(coord.report().batches_completed, 4);
}

TEST(Coordinator, BatchSizeGroupsTrees) {
  const Graph g = workload(12);
  const HgpResult baseline = solve_hgp(g, hier(), base_options(12, 5));

  std::deque<ShardThread> pool;
  CoordinatorOptions copt;
  copt.batch_size = 2;  // 5 trees -> batches {0,1},{2,3},{4}
  ShardCoordinator coord(g, hier(), base_options(12, 5), copt);
  coord.adopt_shard(start_shard(pool));
  const HgpResult got = coord.solve();

  expect_bit_identical(got, baseline);
  EXPECT_EQ(coord.report().batches_completed, 3);
  EXPECT_EQ(coord.report().trees_from_shards, 5);
}

TEST(Coordinator, CrashedShardIsDetectedAndWorkReassigned) {
  const Graph g = workload(13);
  const HgpResult baseline = solve_hgp(g, hier(), base_options(13));

  std::deque<ShardThread> pool;
  CoordinatorOptions copt;
  ShardCoordinator coord(g, hier(), base_options(13), copt);
  // Shard 0 crashes the moment it receives work — socket gone, no goodbye.
  coord.adopt_shard(start_scripted_shard(pool, g, [](net::FrameChannel& ch) {
    (void)ch.recv(Deadline::after_ms(20000));  // the Assign
    ch.close();
  }));
  coord.adopt_shard(start_shard(pool));
  const HgpResult got = coord.solve();

  expect_bit_identical(got, baseline);
  EXPECT_EQ(coord.report().shards_lost, 1);
  EXPECT_GE(coord.report().batches_reassigned, 1);
  EXPECT_EQ(coord.report().trees_from_shards, 4);
  EXPECT_FALSE(coord.report().degraded_inprocess);
}

TEST(Coordinator, HungShardLeaseExpires) {
  const Graph g = workload(14);
  const HgpResult baseline = solve_hgp(g, hier(), base_options(14));

  std::deque<ShardThread> pool;
  Mutex mu;
  CondVar cv;
  bool release = false;
  CoordinatorOptions copt;
  copt.lease_ms = 150;
  ShardCoordinator coord(g, hier(), base_options(14), copt);
  // Shard 0 accepts the batch, then goes silent (no heartbeats, no result,
  // socket held open) until the test releases it — a hang, not a crash.
  coord.adopt_shard(start_scripted_shard(pool, g, [&](net::FrameChannel& ch) {
    (void)ch.recv(Deadline::after_ms(20000));
    MutexLock lock(mu);
    while (!release) cv.wait_for_ms(mu, 50);
  }));
  coord.adopt_shard(start_shard(pool));
  const HgpResult got = coord.solve();
  {
    MutexLock lock(mu);
    release = true;
  }
  cv.notify_all();

  expect_bit_identical(got, baseline);
  EXPECT_GE(coord.report().lease_expiries, 1);
  EXPECT_EQ(coord.report().shards_lost, 1);
  EXPECT_GE(coord.report().batches_reassigned, 1);
  EXPECT_EQ(coord.report().trees_from_shards, 4);
}

TEST(Coordinator, ZombieResultIsFencedExactlyOnce) {
  const Graph g = workload(15);
  const HgpResult baseline = solve_hgp(g, hier(), base_options(15));
  obs::EventJournal::global().clear();

  std::deque<ShardThread> pool;
  Mutex mu;
  CondVar cv;
  bool gate_open = false;

  CoordinatorOptions copt;
  copt.lease_ms = 150;
  copt.batch_size = 1;
  ShardCoordinator coord(g, hier(), base_options(15), copt);

  // Shard 0 (honest, gated): its first tree solve blocks until the test
  // opens the gate, which keeps the coordinated solve provably alive while
  // the zombie acts out.  Its heartbeat thread keeps beating throughout, so
  // ITS lease never expires.
  ShardServerOptions gated;
  gated.on_tree_start = [&](int) {
    MutexLock lock(mu);
    while (!gate_open) cv.wait_for_ms(mu, 20);
  };
  coord.adopt_shard(start_shard(pool, gated));

  // Shard 1 (zombie): takes a batch, goes silent past the lease so the
  // batch is reassigned under a bumped epoch, then "wakes up" and delivers
  // the result under the ORIGINAL epoch — which must be fenced, not
  // double-counted.
  coord.adopt_shard(start_scripted_shard(pool, g, [&](net::FrameChannel& ch) {
    auto assign_frame = ch.recv(Deadline::after_ms(20000));
    ASSERT_TRUE(assign_frame.has_value());
    const net::AssignMsg assign = net::decode_assign(assign_frame->payload);
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    net::BatchResultMsg stale;
    stale.epoch = assign.epoch;  // stale by now: the lease expired long ago
    stale.batch_id = assign.batch_id;
    for (std::int32_t ti : assign.tree_indices) {
      net::TreeResultWire tree;
      tree.tree_index = ti;
      tree.status = static_cast<std::uint8_t>(StatusCode::kOk);
      tree.cost = 0.0;  // hostile: would win any arg-min if not fenced
      tree.leaf_of.assign(static_cast<std::size_t>(20), 0);
      stale.trees.push_back(std::move(tree));
    }
    ch.send(net::kMsgBatchResult, net::encode_batch_result(stale),
            Deadline::after_ms(20000));
    {
      MutexLock lock(mu);
      while (!gate_open) cv.wait_for_ms(mu, 20);
    }
  }));

  // Let the zombie's lease expire and its stale result land, then open the
  // gate so the honest shard finishes everything.
  std::thread opener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(700));
    MutexLock lock(mu);
    gate_open = true;
    cv.notify_all();
  });
  const HgpResult got = coord.solve();
  opener.join();

  expect_bit_identical(got, baseline);
  EXPECT_GE(coord.report().lease_expiries, 1);
  EXPECT_GE(coord.report().zombies_fenced, 1);
  EXPECT_GE(coord.report().batches_reassigned, 1);
  // Every tree was accounted exactly once despite the double delivery.
  EXPECT_EQ(coord.report().trees_from_shards, 4);
  EXPECT_EQ(coord.report().batches_completed, 4);

  bool saw_fence = false, saw_lease = false, saw_reassign = false;
  for (const obs::JournalEvent& e : obs::EventJournal::global().snapshot()) {
    saw_fence |= e.kind == obs::EventKind::kZombieFenced;
    saw_lease |= e.kind == obs::EventKind::kLeaseExpire;
    saw_reassign |= e.kind == obs::EventKind::kBatchReassign;
  }
  EXPECT_TRUE(saw_fence);
  EXPECT_TRUE(saw_lease);
  EXPECT_TRUE(saw_reassign);
}

TEST(Coordinator, AllShardsLostDegradesToInProcess) {
  const Graph g = workload(16);
  const HgpResult baseline = solve_hgp(g, hier(), base_options(16));

  std::deque<ShardThread> pool;
  CoordinatorOptions copt;
  ShardCoordinator coord(g, hier(), base_options(16), copt);
  // Every shard crashes on first contact with work.
  for (int i = 0; i < 2; ++i) {
    coord.adopt_shard(start_scripted_shard(pool, g, [](net::FrameChannel& ch) {
      (void)ch.recv(Deadline::after_ms(20000));
      ch.close();
    }));
  }
  const HgpResult got = coord.solve();

  expect_bit_identical(got, baseline);
  EXPECT_EQ(coord.report().shards_lost, 2);
  EXPECT_TRUE(coord.report().degraded_inprocess);
  EXPECT_EQ(coord.report().trees_from_shards, 0);
}

TEST(Coordinator, NoShardsAtAllStillSolves) {
  const Graph g = workload(17);
  const HgpResult baseline = solve_hgp(g, hier(), base_options(17));
  CoordinatorOptions copt;
  ShardCoordinator coord(g, hier(), base_options(17), copt);
  const HgpResult got = coord.solve();
  expect_bit_identical(got, baseline);
  EXPECT_TRUE(coord.report().degraded_inprocess);
}

TEST(Coordinator, MalformedRemoteResultIsRejectedNotTrusted) {
  const Graph g = workload(18);
  const HgpResult baseline = solve_hgp(g, hier(), base_options(18));

  std::deque<ShardThread> pool;
  CoordinatorOptions copt;
  ShardCoordinator coord(g, hier(), base_options(18), copt);
  // A "shard" that answers every assignment instantly with a wrongly-sized
  // placement and a winning cost: the shape check must throw it away and
  // the final in-process aggregation must re-solve those trees.
  coord.adopt_shard(start_scripted_shard(pool, g, [](net::FrameChannel& ch) {
    for (;;) {
      auto frame = ch.recv(Deadline::after_ms(20000));
      if (!frame.has_value() || frame->type != net::kMsgAssign) return;
      const net::AssignMsg assign = net::decode_assign(frame->payload);
      net::BatchResultMsg res;
      res.epoch = assign.epoch;
      res.batch_id = assign.batch_id;
      for (std::int32_t ti : assign.tree_indices) {
        net::TreeResultWire tree;
        tree.tree_index = ti;
        tree.status = static_cast<std::uint8_t>(StatusCode::kOk);
        tree.cost = 0.0;
        tree.leaf_of = {0};  // wrong size for a 20-vertex instance
        res.trees.push_back(std::move(tree));
      }
      ch.send(net::kMsgBatchResult, net::encode_batch_result(res),
              Deadline::after_ms(20000));
    }
  }));
  const HgpResult got = coord.solve();

  expect_bit_identical(got, baseline);
  EXPECT_EQ(coord.report().trees_from_shards, 0);
  EXPECT_TRUE(coord.report().degraded_inprocess);
}

TEST(Coordinator, CallerCancelThrowsCancelled) {
  const Graph g = workload(19);
  CancelToken cancel;
  cancel.request_cancel();
  SolverOptions opt = base_options(19);
  opt.cancel = &cancel;

  std::deque<ShardThread> pool;
  CoordinatorOptions copt;
  ShardCoordinator coord(g, hier(), opt, copt);
  coord.adopt_shard(start_shard(pool));
  try {
    (void)coord.solve();
    FAIL() << "cancelled solve must throw";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kCancelled);
  }
}

TEST(Coordinator, InvalidOptionsRejectedUpFront) {
  const Graph g = workload(20);
  SolverOptions opt = base_options(20);
  opt.num_trees = 0;
  CoordinatorOptions copt;
  ShardCoordinator coord(g, hier(), opt, copt);
  try {
    (void)coord.solve();
    FAIL() << "invalid options must throw";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kInvalidInput);
  }
}

TEST(Coordinator, SharedCheckpointKeepsShardTrees) {
  // A caller-supplied checkpoint accumulates the shard-delivered trees, so
  // a retrying service layer can reuse them like any other checkpoint.
  const Graph g = workload(21);
  SolveCheckpoint ck;
  SolverOptions opt = base_options(21);
  opt.checkpoint = &ck;

  std::deque<ShardThread> pool;
  CoordinatorOptions copt;
  ShardCoordinator coord(g, hier(), opt, copt);
  coord.adopt_shard(start_shard(pool));
  const HgpResult got = coord.solve();
  EXPECT_EQ(ck.size(), 4u);

  // A rerun with the same checkpoint serves every tree from it.
  const HgpResult resumed = solve_hgp(g, hier(), opt);
  expect_bit_identical(resumed, got);
  for (const TreeAttempt& a : resumed.attempts) {
    EXPECT_TRUE(a.from_checkpoint);
  }
}

}  // namespace
}  // namespace hgp
