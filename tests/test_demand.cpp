#include <gtest/gtest.h>

#include <cmath>

#include "core/demand.hpp"
#include "graph/generators.hpp"

namespace hgp {
namespace {

Tree demo_tree(int n, double demand) {
  Rng rng(1);
  const Graph g = gen::random_tree(narrow<Vertex>(n), rng);
  Tree t = Tree::from_graph(g, 0);
  std::vector<double> d(t.leaves().size(), demand);
  t.set_leaf_demands(d);
  return t;
}

TEST(ScaleDemands, UnitsFromEpsilon) {
  const Tree t = demo_tree(20, 0.5);
  const Hierarchy h({4}, {1.0, 0.0});
  const ScaledDemands sd = scale_demands(t, h, 0.5);
  // U = ceil(#leaves / ε).
  const auto leaves = static_cast<double>(t.leaf_count());
  EXPECT_EQ(sd.units_per_capacity,
            static_cast<DemandUnits>(std::ceil(leaves / 0.5)));
}

TEST(ScaleDemands, OverrideWins) {
  const Tree t = demo_tree(10, 0.5);
  const Hierarchy h({4}, {1.0, 0.0});
  const ScaledDemands sd = scale_demands(t, h, 0.5, 16);
  EXPECT_EQ(sd.units_per_capacity, 16);
  for (Vertex leaf : t.leaves()) {
    EXPECT_EQ(sd.units[static_cast<std::size_t>(leaf)], 8);  // 0.5·16
  }
}

TEST(ScaleDemands, FlooringUnderCounts) {
  Tree t = demo_tree(4, 0.5);
  std::vector<double> d(t.leaves().size(), 0.37);
  t.set_leaf_demands(d);
  const Hierarchy h({4}, {1.0, 0.0});
  const ScaledDemands sd = scale_demands(t, h, 1.0, 10);
  for (Vertex leaf : t.leaves()) {
    EXPECT_EQ(sd.units[static_cast<std::size_t>(leaf)], 3);  // ⌊3.7⌋
  }
}

TEST(ScaleDemands, TinyDemandsRoundUpToOneUnit) {
  Tree t = demo_tree(4, 0.5);
  std::vector<double> d(t.leaves().size(), 1e-6);
  t.set_leaf_demands(d);
  const Hierarchy h({4}, {1.0, 0.0});
  const ScaledDemands sd = scale_demands(t, h, 0.5, 8);
  for (Vertex leaf : t.leaves()) {
    EXPECT_EQ(sd.units[static_cast<std::size_t>(leaf)], 1);
  }
}

TEST(ScaleDemands, CapacitiesScaleWithLevels) {
  const Tree t = demo_tree(12, 0.25);
  const Hierarchy h({2, 3}, {2.0, 1.0, 0.0});
  const ScaledDemands sd = scale_demands(t, h, 1.0, 10);
  EXPECT_EQ(sd.capacity_at(0), 60);  // 6 leaves × 10
  EXPECT_EQ(sd.capacity_at(1), 30);
  EXPECT_EQ(sd.capacity_at(2), 10);
}

TEST(ScaleDemands, TotalsAccumulate) {
  const Tree t = demo_tree(10, 0.5);
  const Hierarchy h({4}, {1.0, 0.0});
  const ScaledDemands sd = scale_demands(t, h, 1.0, 4);
  EXPECT_EQ(sd.total,
            static_cast<DemandUnits>(2 * t.leaf_count()));  // 0.5·4 each
}

TEST(ScaleDemands, RejectsMissingDemandsAndBadEpsilon) {
  Rng rng(2);
  const Graph g = gen::random_tree(8, rng);
  const Tree t = Tree::from_graph(g, 0);  // no demands
  const Hierarchy h({4}, {1.0, 0.0});
  EXPECT_THROW(scale_demands(t, h, 0.5), CheckError);
  const Tree t2 = demo_tree(8, 0.5);
  EXPECT_THROW(scale_demands(t2, h, 0.0), CheckError);
  EXPECT_THROW(scale_demands(t2, h, -1.0), CheckError);
}

}  // namespace
}  // namespace hgp
