// Service-layer tests: admission control, memory-budget degradation,
// retry/backoff, checkpoint-resume, watchdog cancellation and drain
// semantics (src/runtime/service.hpp, docs/RESILIENCE.md).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "graph/generators.hpp"
#include "hierarchy/placement.hpp"
#include "runtime/service.hpp"
#include "util/fault_injector.hpp"
#include "util/memory_budget.hpp"
#include "util/prng.hpp"

namespace hgp {
namespace {

Graph workload(std::uint64_t seed, Vertex n = 24) {
  Rng rng(seed);
  Graph g = gen::planted_partition(n, 4, 0.75, 0.05, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / static_cast<double>(n));
  return g;
}

const Hierarchy& hier() {
  static const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  return h;
}

/// Restores the global memory budget on scope exit: the budget is process
/// state and a failing test must not poison its successors.
struct BudgetGuard {
  std::size_t saved_limit;
  BudgetGuard() : saved_limit(MemoryBudget::global().limit()) {}
  ~BudgetGuard() { MemoryBudget::global().set_limit(saved_limit); }
};

FaultInjector::Fault throw_fault(double probability = 1.0,
                                 std::uint64_t seed = 1) {
  FaultInjector::Fault f;
  f.action = FaultInjector::Action::kThrow;
  f.probability = probability;
  f.seed = seed;
  return f;
}

FaultInjector::Fault stall_fault(double ms, double probability = 1.0,
                                 std::uint64_t seed = 1) {
  FaultInjector::Fault f;
  f.action = FaultInjector::Action::kStall;
  f.stall_ms = ms;
  f.probability = probability;
  f.seed = seed;
  return f;
}

/// Finds a fault-stream seed whose FIRST probability draw fires and whose
/// next `clean` draws do not — the deterministic way to say "fail exactly
/// the first attempt, pass the retries" (the injector consumes one draw
/// per site hit; see FaultInjector::Fault::seed).
std::uint64_t seed_firing_once(double p, int clean = 8) {
  for (std::uint64_t s = 1;; ++s) {
    SplitMix64 sm(s);
    auto draw = [&] {
      return static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
    };
    if (!(draw() < p)) continue;
    bool rest_clean = true;
    for (int i = 0; i < clean; ++i) rest_clean = rest_clean && !(draw() < p);
    if (rest_clean) return s;
  }
}

// ---------------------------------------------------------------------------
// solve_with_retry

TEST(SolveWithRetry, SucceedsFirstTryWithoutSpendingRetries) {
  const Graph g = workload(7);
  SolverOptions opt;
  opt.num_trees = 2;
  const RetrySolveReport rep = solve_with_retry(g, hier(), opt);
  ASSERT_TRUE(rep.ok());
  ASSERT_TRUE(rep.has_result);
  EXPECT_EQ(rep.retries_used, 0);
  EXPECT_EQ(rep.result.retries_used, 0);
  EXPECT_NO_THROW(validate_placement(g, hier(), rep.result.placement));
}

TEST(SolveWithRetry, RetriesTransientFaultAndSurfacesSpend) {
  // The finalize fault kills attempt 1 after its trees completed; the
  // probability stream is seeded to fire exactly once, so attempt 2 runs
  // clean and must also resume every tree from the shared checkpoint.
  const Graph g = workload(11);
  const std::uint64_t fire_once = seed_firing_once(0.5);
  FaultScope finalize("solve_finalize", 0, throw_fault(0.5, fire_once));

  SolverOptions opt;
  opt.num_trees = 2;
  RetryOptions retry;
  retry.max_retries = 2;
  retry.backoff_base_ms = 1;
  retry.backoff_max_ms = 2;
  const RetrySolveReport rep = solve_with_retry(g, hier(), opt, retry);
  ASSERT_TRUE(rep.ok()) << rep.status.to_string();
  ASSERT_TRUE(rep.has_result);
  EXPECT_EQ(rep.retries_used, 1);
  EXPECT_EQ(rep.result.retries_used, 1);
  // Checkpoint-resume: the retry served completed trees instead of
  // re-running their DP.
  EXPECT_GE(rep.result.telemetry.checkpoint_trees, 1);
  int from_checkpoint = 0;
  for (const TreeAttempt& a : rep.result.attempts) {
    from_checkpoint += a.from_checkpoint ? 1 : 0;
  }
  EXPECT_EQ(from_checkpoint, rep.result.telemetry.checkpoint_trees);
}

TEST(SolveWithRetry, ExhaustedRetryBudgetIsSurfacedNotThrown) {
  const Graph g = workload(13);
  FaultScope finalize("solve_finalize", 0, throw_fault());  // every attempt
  SolverOptions opt;
  opt.num_trees = 1;
  RetryOptions retry;
  retry.max_retries = 2;
  retry.backoff_base_ms = 1;
  retry.backoff_max_ms = 2;
  const RetrySolveReport rep = solve_with_retry(g, hier(), opt, retry);
  EXPECT_FALSE(rep.ok());
  EXPECT_TRUE(rep.retry_budget_exhausted);
  EXPECT_EQ(rep.retries_used, 2);
  EXPECT_EQ(rep.status.code, StatusCode::kInternal);
}

TEST(SolveWithRetry, PermanentFailuresDoNotBurnRetries) {
  Rng rng(17);
  const Graph g = gen::erdos_renyi(12, 0.3, rng);  // no demands → invalid
  const RetrySolveReport rep = solve_with_retry(g, hier(), SolverOptions{});
  EXPECT_EQ(rep.status.code, StatusCode::kInvalidInput);
  EXPECT_EQ(rep.retries_used, 0);
  EXPECT_FALSE(rep.has_result);
  EXPECT_FALSE(rep.retry_budget_exhausted);
}

// ---------------------------------------------------------------------------
// Memory budget: degrade, never OOM (the ISSUE's acceptance scenario).

TEST(MemoryBudget, SolveDegradesUnderTightBudgetInsteadOfOOM) {
  const Graph g = workload(19, 32);
  BudgetGuard guard;
  // Far below the DP footprint: arena chunk reservations fail, every tree
  // reports kResourceExhausted, and the solve must come back through the
  // degradation ladder / fallback chain rather than OOM-aborting.
  MemoryBudget::global().set_limit(16 << 10);
  SolverOptions opt;
  opt.num_trees = 4;
  RetryOptions retry;
  retry.max_retries = 1;
  retry.backoff_base_ms = 1;
  retry.backoff_max_ms = 2;
  const RetrySolveReport rep = solve_with_retry(g, hier(), opt, retry);
  // Either a degraded-but-placed result or a typed kResourceExhausted —
  // both are the documented outcomes; an OOM abort would fail the test
  // runner itself.
  EXPECT_TRUE(rep.status.code == StatusCode::kOk ||
              rep.status.code == StatusCode::kResourceExhausted)
      << rep.status.to_string();
  if (rep.has_result) {
    EXPECT_NO_THROW(validate_placement(g, hier(), rep.result.placement));
  } else {
    EXPECT_EQ(rep.status.code, StatusCode::kResourceExhausted);
  }
}

TEST(MemoryBudget, LadderStepsAreFreeAndBounded) {
  const Graph g = workload(23, 32);
  BudgetGuard guard;
  MemoryBudget::global().set_limit(16 << 10);
  SolverOptions opt;
  opt.num_trees = 8;
  RetryOptions retry;
  retry.max_retries = 0;  // ladder steps must not need the retry budget
  const RetrySolveReport rep = solve_with_retry(g, hier(), opt, retry);
  EXPECT_EQ(rep.retries_used, 0);
  // force_prune + log2(trees) halvings bounds the ladder.
  EXPECT_LE(rep.degrades, 1 + 4);
}

TEST(MemoryBudget, ReserveOrThrowReportsResourceExhausted) {
  BudgetGuard guard;
  // Baseline-relative: long-lived charges (e.g. cached forests from earlier
  // tests) legitimately stay reserved across tests.
  const std::size_t used_before = MemoryBudget::global().used();
  MemoryBudget::global().set_limit(used_before + (1 << 10));
  try {
    MemoryBudget::global().reserve_or_throw(1 << 20, "test block");
    FAIL() << "reserve_or_throw must throw over the limit";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.code(), StatusCode::kResourceExhausted);
  }
  // The failed reservation rolled its bytes back.
  EXPECT_EQ(MemoryBudget::global().used(), used_before);
}

// ---------------------------------------------------------------------------
// SolverService: admission control.

TEST(SolverService, RejectsWhenQueueFull) {
  const Graph g = workload(29);
  ServiceOptions sopt;
  sopt.workers = 1;
  sopt.max_queue = 1;
  sopt.retry.max_retries = 0;
  SolverService service(sopt);

  // Hold the single worker inside request 1 long enough to stack up.
  FaultScope stall("solve_one_tree", 0, stall_fault(300));
  SolverOptions opt;
  opt.num_trees = 1;
  auto r1 = service.submit(g, hier(), opt);
  // Wait until the worker picked r1 up so r2 lands in the queue.
  while (service.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto r2 = service.submit(g, hier(), opt);
  auto r3 = service.submit(g, hier(), opt);  // queue full → rejected

  EXPECT_TRUE(r3->done());  // rejection is immediate and terminal
  EXPECT_EQ(r3->wait().status.code, StatusCode::kResourceExhausted);
  EXPECT_FALSE(r3->wait().has_result);

  EXPECT_TRUE(r1->wait().ok());
  EXPECT_TRUE(r2->wait().ok());
  const SolverService::Stats stats = service.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.admitted, 2u);
}

TEST(SolverService, RejectsUnderBudgetPressure) {
  const Graph g = workload(31);
  BudgetGuard guard;
  // Leave 1 MiB of headroom above whatever is already charged, then hog
  // almost all of it so utilization sits above the admission threshold.
  MemoryBudget::global().set_limit(MemoryBudget::global().used() + (64u << 20));
  ASSERT_TRUE(MemoryBudget::global().try_reserve((64u << 20) - 64));

  ServiceOptions sopt;
  sopt.admission_max_utilization = 0.9;
  SolverService service(sopt);
  auto req = service.submit(g, hier());
  EXPECT_TRUE(req->done());
  EXPECT_EQ(req->wait().status.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected_budget, 1u);

  MemoryBudget::global().release((64u << 20) - 64);
  // Pressure gone → the next arrival is admitted and solves.
  auto ok_req = service.submit(g, hier());
  EXPECT_TRUE(ok_req->wait().ok());
}

// ---------------------------------------------------------------------------
// SolverService: retry, checkpoint, watchdog, drain.

TEST(SolverService, RetriesTransientFaultToSuccess) {
  const Graph g = workload(37);
  const std::uint64_t fire_once = seed_firing_once(0.5);
  FaultScope finalize("solve_finalize", 0, throw_fault(0.5, fire_once));

  ServiceOptions sopt;
  sopt.workers = 1;
  sopt.retry.max_retries = 2;
  sopt.retry.backoff_base_ms = 1;
  sopt.retry.backoff_max_ms = 2;
  SolverService service(sopt);
  SolverOptions opt;
  opt.num_trees = 2;
  auto req = service.submit(g, hier(), opt);
  const RetrySolveReport& rep = req->wait();
  ASSERT_TRUE(rep.ok()) << rep.status.to_string();
  EXPECT_EQ(rep.retries_used, 1);
  EXPECT_GE(rep.result.telemetry.checkpoint_trees, 1);
  const SolverService::Stats stats = service.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_GE(stats.checkpoint_trees, 1u);
}

TEST(SolverService, WatchdogCancelsStuckAttemptAndRetrySucceeds) {
  const Graph g = workload(41);
  // Attempt 1 stalls tree 0 far past the watchdog threshold; the watchdog
  // cancels it, the retry runs clean (the stall stream fires once).  The
  // threshold leaves a clean small-graph solve a wide margin even under
  // TSan's slowdown, so only the stalled attempt can be cancelled.
  const std::uint64_t fire_once = seed_firing_once(0.5);
  FaultScope stall("solve_one_tree", 0, stall_fault(2500, 0.5, fire_once));

  ServiceOptions sopt;
  sopt.workers = 1;
  sopt.retry.max_retries = 2;
  sopt.retry.backoff_base_ms = 1;
  sopt.retry.backoff_max_ms = 2;
  sopt.stuck_after_ms = 800;
  sopt.watchdog_poll_ms = 20;
  SolverService service(sopt);
  SolverOptions opt;
  opt.num_trees = 2;
  auto req = service.submit(g, hier(), opt);
  const RetrySolveReport& rep = req->wait();
  ASSERT_TRUE(rep.ok()) << rep.status.to_string();
  EXPECT_GE(rep.retries_used, 1);
  EXPECT_GE(service.stats().watchdog_cancels, 1u);
}

TEST(SolverService, CallerCancelIsTerminalNotRetried) {
  const Graph g = workload(43);
  FaultScope stall("solve_one_tree", 0, stall_fault(200));
  ServiceOptions sopt;
  sopt.workers = 1;
  sopt.retry.max_retries = 3;
  SolverService service(sopt);
  SolverOptions opt;
  opt.num_trees = 1;
  auto req = service.submit(g, hier(), opt);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  req->cancel();
  const RetrySolveReport& rep = req->wait();
  EXPECT_EQ(rep.status.code, StatusCode::kCancelled);
  EXPECT_EQ(rep.retries_used, 0);  // a caller cancel must not be retried
}

TEST(SolverService, DrainFinishesInFlightAndRejectsNewArrivals) {
  const Graph g = workload(47);
  ServiceOptions sopt;
  sopt.workers = 2;
  SolverService service(sopt);
  SolverOptions opt;
  opt.num_trees = 1;
  std::vector<std::shared_ptr<ServiceRequest>> reqs;
  for (int i = 0; i < 6; ++i) reqs.push_back(service.submit(g, hier(), opt));
  service.drain();
  for (const auto& r : reqs) {
    EXPECT_TRUE(r->done());
    EXPECT_TRUE(r->wait().ok());
  }
  auto late = service.submit(g, hier(), opt);
  EXPECT_TRUE(late->done());
  EXPECT_EQ(late->wait().status.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().rejected_draining, 1u);
  service.drain();  // idempotent
}

TEST(SolverService, ZeroQueueRejectsEverythingImmediately) {
  const Graph g = workload(53);
  ServiceOptions sopt;
  sopt.max_queue = 0;
  SolverService service(sopt);
  auto req = service.submit(g, hier());
  EXPECT_TRUE(req->done());
  EXPECT_EQ(req->wait().status.code, StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Durable spills (ServiceOptions::spill_dir, docs/RESILIENCE.md)

/// Fresh spill directory, removed (with contents) on scope exit.
struct SpillDir {
  std::string path;
  SpillDir() {
    std::string templ =
        (std::filesystem::temp_directory_path() / "hgp-test-spill-XXXXXX")
            .string();
    path = ::mkdtemp(templ.data()) != nullptr ? templ : std::string();
  }
  ~SpillDir() {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  }
};

std::size_t spill_file_count(const std::string& dir) {
  std::size_t n = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    n += e.path().extension() == ".ckpt" ? 1u : 0u;
  }
  return n;
}

TEST(SolverService, SpillsCheckpointAndResumesAcrossRestart) {
  const Graph g = workload(59);
  SpillDir spill;
  ASSERT_FALSE(spill.path.empty());

  ServiceOptions sopt;
  sopt.workers = 1;
  sopt.retry.max_retries = 0;  // first failure is terminal → one spill
  sopt.spill_dir = spill.path;
  SolverOptions opt;
  opt.num_trees = 2;
  opt.seed = 59;
  opt.fallback = FallbackPolicy::kNone;  // the failure must propagate

  // "Process" 1: every tree completes, then the finalize boundary dies.
  {
    FaultScope finalize("solve_finalize", 0, throw_fault());
    SolverService crashing(sopt);
    auto req = crashing.submit(g, hier(), opt);
    EXPECT_FALSE(req->wait().ok());
    EXPECT_EQ(crashing.stats().checkpoint_spills, 1u);
  }
  EXPECT_EQ(spill_file_count(spill.path), 1u);

  // "Process" 2: a fresh service over the same directory recovers the
  // spill; the identical request resumes every tree instead of re-solving.
  SolverService restarted(sopt);
  auto req = restarted.submit(g, hier(), opt);
  const RetrySolveReport& rep = req->wait();
  ASSERT_TRUE(rep.ok()) << rep.status.to_string();
  ASSERT_TRUE(rep.has_result);
  EXPECT_EQ(rep.result.telemetry.checkpoint_trees, opt.num_trees);
  EXPECT_EQ(restarted.stats().checkpoint_recovered, 1u);
  // Success consumes the spill file.
  EXPECT_EQ(spill_file_count(spill.path), 0u);
  EXPECT_NO_THROW(validate_placement(g, hier(), rep.result.placement));
}

TEST(SolverService, DifferentKeyDoesNotConsumeRecoveredSpill) {
  const Graph g = workload(61);
  SpillDir spill;
  ASSERT_FALSE(spill.path.empty());

  ServiceOptions sopt;
  sopt.workers = 1;
  sopt.retry.max_retries = 0;
  sopt.spill_dir = spill.path;
  SolverOptions opt;
  opt.num_trees = 2;
  opt.seed = 61;
  opt.fallback = FallbackPolicy::kNone;
  {
    FaultScope finalize("solve_finalize", 0, throw_fault());
    SolverService crashing(sopt);
    crashing.submit(g, hier(), opt)->wait();
  }

  SolverService restarted(sopt);
  SolverOptions other = opt;
  other.seed = 62;  // different key → different forest → no resume
  other.fallback = FallbackPolicy::kChain;
  auto req = restarted.submit(g, hier(), other);
  const RetrySolveReport& rep = req->wait();
  ASSERT_TRUE(rep.ok()) << rep.status.to_string();
  EXPECT_EQ(rep.result.telemetry.checkpoint_trees, 0);
  EXPECT_EQ(restarted.stats().checkpoint_recovered, 0u);
  // The unmatched spill stays for a later restart with the right key.
  EXPECT_EQ(spill_file_count(spill.path), 1u);
}

TEST(SolverService, CorruptSpillIsDeletedAtRecoveryScan) {
  const Graph g = workload(67);
  SpillDir spill;
  ASSERT_FALSE(spill.path.empty());
  {
    std::ofstream os(spill.path + "/ckpt-deadbeef.ckpt", std::ios::binary);
    os << "not a snapshot container";
  }

  ServiceOptions sopt;
  sopt.spill_dir = spill.path;
  SolverService service(sopt);
  // The unreadable spill was counted and deleted (its bytes are gone for
  // good); the service still serves requests normally.
  EXPECT_GE(service.stats().checkpoint_spill_failures, 1u);
  EXPECT_EQ(spill_file_count(spill.path), 0u);
  auto req = service.submit(g, hier());
  EXPECT_TRUE(req->wait().ok());
}

TEST(SolverService, SpillWriteFailureDegradesToInMemory) {
  const Graph g = workload(71);
  SpillDir spill;
  ASSERT_FALSE(spill.path.empty());

  ServiceOptions sopt;
  sopt.workers = 1;
  sopt.retry.max_retries = 2;
  sopt.retry.backoff_base_ms = 1;
  sopt.retry.backoff_max_ms = 2;
  sopt.spill_dir = spill.path;
  SolverOptions opt;
  opt.num_trees = 2;
  opt.seed = 71;

  // Attempt 1 dies at finalize; the spill write hits injected ENOSPC at
  // every boundary.  The retry must still succeed from the *in-memory*
  // checkpoint — durability is best-effort, never load-bearing.
  const std::uint64_t fire_once = seed_firing_once(0.5);
  FaultScope finalize("solve_finalize", 0, throw_fault(0.5, fire_once));
  FaultScope enospc("snapshot.write", FaultInjector::kEveryIndex,
                    [] {
                      FaultInjector::Fault f;
                      f.action = FaultInjector::Action::kIoEnospc;
                      return f;
                    }());
  SolverService service(sopt);
  auto req = service.submit(g, hier(), opt);
  const RetrySolveReport& rep = req->wait();
  ASSERT_TRUE(rep.ok()) << rep.status.to_string();
  EXPECT_GE(rep.result.telemetry.checkpoint_trees, 1);
  EXPECT_EQ(service.stats().checkpoint_spills, 0u);
  EXPECT_GE(service.stats().checkpoint_spill_failures, 1u);
  EXPECT_EQ(spill_file_count(spill.path), 0u);
}

}  // namespace
}  // namespace hgp
