#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace hgp {
namespace {

using gen::WeightRange;

TEST(ErdosRenyi, EmptyAndFullExtremes) {
  Rng rng(1);
  EXPECT_EQ(gen::erdos_renyi(20, 0.0, rng).edge_count(), 0);
  const Graph full = gen::erdos_renyi(10, 1.0, rng);
  EXPECT_EQ(full.edge_count(), 45);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  Rng rng(2);
  const Vertex n = 200;
  const double p = 0.1;
  const Graph g = gen::erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(g.edge_count(), expected, 4 * std::sqrt(expected));
}

TEST(ErdosRenyi, DeterministicInSeed) {
  Rng a(7), b(7);
  const Graph g1 = gen::erdos_renyi(50, 0.2, a);
  const Graph g2 = gen::erdos_renyi(50, 0.2, b);
  ASSERT_EQ(g1.edge_count(), g2.edge_count());
  for (EdgeId e = 0; e < g1.edge_count(); ++e) {
    EXPECT_EQ(g1.edge(e).u, g2.edge(e).u);
    EXPECT_EQ(g1.edge(e).v, g2.edge(e).v);
  }
}

TEST(PlantedPartition, IntraHeavierThanInter) {
  Rng rng(3);
  const Graph g = gen::planted_partition(80, 4, 0.9, 0.05, rng);
  int intra = 0, inter = 0;
  auto cluster = [&](Vertex v) { return v * 4 / 80; };
  for (const Edge& e : g.edges()) {
    (cluster(e.u) == cluster(e.v) ? intra : inter)++;
  }
  EXPECT_GT(intra, inter * 2);
}

TEST(Grid2d, StructureIsCorrect) {
  const Graph g = gen::grid2d(3, 4);
  EXPECT_EQ(g.vertex_count(), 12);
  // Edges: 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8.
  EXPECT_EQ(g.edge_count(), 17);
  EXPECT_TRUE(g.is_connected());
}

TEST(Grid3d, VertexAndEdgeCounts) {
  const Graph g = gen::grid3d(2, 3, 4);
  EXPECT_EQ(g.vertex_count(), 24);
  // x-edges: 1*3*4, y-edges: 2*2*4, z-edges: 2*3*3.
  EXPECT_EQ(g.edge_count(), 12 + 16 + 18);
  EXPECT_TRUE(g.is_connected());
}

TEST(BarabasiAlbert, ConnectedAndScaleFreeIsh) {
  Rng rng(5);
  const Graph g = gen::barabasi_albert(300, 2, rng);
  EXPECT_EQ(g.vertex_count(), 300);
  EXPECT_TRUE(g.is_connected());
  std::size_t max_deg = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    max_deg = std::max(max_deg, g.degree(v));
  }
  // A hub should exist — far beyond the attachment parameter.
  EXPECT_GT(max_deg, 10u);
}

class RandomTreeSizes : public ::testing::TestWithParam<Vertex> {};

TEST_P(RandomTreeSizes, IsATree) {
  Rng rng(11);
  const Vertex n = GetParam();
  const Graph g = gen::random_tree(n, rng);
  EXPECT_EQ(g.vertex_count(), n);
  EXPECT_EQ(g.edge_count(), n - 1);
  EXPECT_TRUE(g.is_connected());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomTreeSizes,
                         ::testing::Values(2, 3, 4, 10, 57, 200));

TEST(Ring, CycleStructure) {
  const Graph g = gen::ring(6);
  EXPECT_EQ(g.edge_count(), 6);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Ring, TinyCases) {
  EXPECT_EQ(gen::ring(1).edge_count(), 0);
  EXPECT_EQ(gen::ring(2).edge_count(), 1);
}

TEST(Complete, AllPairs) {
  const Graph g = gen::complete(7);
  EXPECT_EQ(g.edge_count(), 21);
}

TEST(StreamDag, LayeredStructureWithDemands) {
  Rng rng(13);
  gen::StreamDagOptions opt;
  opt.sources = 3;
  opt.sinks = 2;
  opt.stages = 2;
  opt.stage_width = 5;
  const Graph g = gen::stream_dag(opt, rng);
  EXPECT_EQ(g.vertex_count(), 3 + 5 + 5 + 2);
  EXPECT_TRUE(g.has_demands());
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    EXPECT_GE(g.demand(v), opt.demand_lo);
    EXPECT_LE(g.demand(v), opt.demand_hi);
    EXPECT_GE(g.degree(v), 1u) << "task " << v << " is isolated";
  }
}

TEST(StreamDag, EdgesOnlyBetweenAdjacentLayers) {
  Rng rng(17);
  gen::StreamDagOptions opt;
  opt.sources = 4;
  opt.sinks = 3;
  opt.stages = 3;
  opt.stage_width = 6;
  const Graph g = gen::stream_dag(opt, rng);
  auto layer_of = [&](Vertex v) {
    if (v < 4) return 0;
    if (v < 4 + 6) return 1;
    if (v < 4 + 12) return 2;
    if (v < 4 + 18) return 3;
    return 4;
  };
  for (const Edge& e : g.edges()) {
    EXPECT_EQ(layer_of(e.v) - layer_of(e.u), 1)
        << "edge " << e.u << "-" << e.v << " skips layers";
  }
}

TEST(StreamDag, HeavyChannelsExist) {
  Rng rng(19);
  gen::StreamDagOptions opt;
  opt.stages = 4;
  opt.stage_width = 10;
  opt.heavy_fraction = 0.5;
  const Graph g = gen::stream_dag(opt, rng);
  const bool any_heavy = std::any_of(
      g.edges().begin(), g.edges().end(),
      [&](const Edge& e) { return e.weight >= opt.heavy_lo; });
  EXPECT_TRUE(any_heavy);
}

TEST(Demands, UniformSetter) {
  Graph g = gen::grid2d(2, 2);
  gen::set_uniform_demands(g, 0.25);
  EXPECT_DOUBLE_EQ(g.total_demand(), 1.0);
}

TEST(Demands, RandomSetterRespectsRange) {
  Graph g = gen::grid2d(3, 3);
  Rng rng(23);
  gen::set_random_demands(g, rng, 0.1, 0.4);
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    EXPECT_GE(g.demand(v), 0.1);
    EXPECT_LE(g.demand(v), 0.4);
  }
}

TEST(Demands, KbgpSetter) {
  Graph g = gen::ring(8);
  gen::set_kbgp_demands(g, 4);
  EXPECT_DOUBLE_EQ(g.demand(0), 0.25);
  EXPECT_DOUBLE_EQ(g.total_demand(), 2.0);  // needs 2 leaves of capacity 4
}

TEST(WeightRanges, RandomWeightsWithinBounds) {
  Rng rng(29);
  const Graph g = gen::erdos_renyi(40, 0.3, rng, WeightRange{2.0, 5.0});
  for (const Edge& e : g.edges()) {
    EXPECT_GE(e.weight, 2.0);
    EXPECT_LE(e.weight, 5.0);
  }
}

}  // namespace
}  // namespace hgp
