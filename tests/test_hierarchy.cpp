#include <gtest/gtest.h>

#include "hierarchy/hierarchy.hpp"

namespace hgp {
namespace {

// The running example: 2 sockets × 4 cores × 2 hyperthreads.
Hierarchy socket_core_ht() {
  return Hierarchy({2, 4, 2}, {10.0, 4.0, 1.0, 0.0});
}

TEST(Hierarchy, BasicShape) {
  const Hierarchy h = socket_core_ht();
  EXPECT_EQ(h.height(), 3);
  EXPECT_EQ(h.leaf_count(), 16);
  EXPECT_EQ(h.deg(0), 2);
  EXPECT_EQ(h.deg(2), 2);
}

TEST(Hierarchy, CapacitiesTelescopeThroughLevels) {
  const Hierarchy h = socket_core_ht();
  EXPECT_EQ(h.capacity(0), 16);  // root holds all leaves
  EXPECT_EQ(h.capacity(1), 8);   // one socket
  EXPECT_EQ(h.capacity(2), 2);   // one core (2 hyperthreads)
  EXPECT_EQ(h.capacity(3), 1);   // one hyperthread
}

TEST(Hierarchy, NodeCountsPerLevel) {
  const Hierarchy h = socket_core_ht();
  EXPECT_EQ(h.nodes_at(0), 1);
  EXPECT_EQ(h.nodes_at(1), 2);
  EXPECT_EQ(h.nodes_at(2), 8);
  EXPECT_EQ(h.nodes_at(3), 16);
}

TEST(Hierarchy, LeafAncestorIndices) {
  const Hierarchy h = socket_core_ht();
  EXPECT_EQ(h.leaf_ancestor(0, 1), 0);
  EXPECT_EQ(h.leaf_ancestor(7, 1), 0);
  EXPECT_EQ(h.leaf_ancestor(8, 1), 1);
  EXPECT_EQ(h.leaf_ancestor(5, 2), 2);
  EXPECT_EQ(h.leaf_ancestor(15, 3), 15);
}

TEST(Hierarchy, LcaLevels) {
  const Hierarchy h = socket_core_ht();
  EXPECT_EQ(h.lca_level(0, 0), 3);    // same leaf
  EXPECT_EQ(h.lca_level(0, 1), 2);    // same core
  EXPECT_EQ(h.lca_level(0, 2), 1);    // same socket, different core
  EXPECT_EQ(h.lca_level(0, 8), 0);    // across sockets
  EXPECT_EQ(h.lca_level(14, 15), 2);
}

TEST(Hierarchy, LcaIsSymmetric) {
  const Hierarchy h = socket_core_ht();
  for (LeafId a = 0; a < h.leaf_count(); ++a) {
    for (LeafId b = 0; b < h.leaf_count(); ++b) {
      EXPECT_EQ(h.lca_level(a, b), h.lca_level(b, a));
    }
  }
}

TEST(Hierarchy, KbgpFactory) {
  const Hierarchy h = Hierarchy::kbgp(5);
  EXPECT_EQ(h.height(), 1);
  EXPECT_EQ(h.leaf_count(), 5);
  EXPECT_DOUBLE_EQ(h.cm(0), 1.0);
  EXPECT_DOUBLE_EQ(h.cm(1), 0.0);
  EXPECT_TRUE(h.is_normalized());
}

TEST(Hierarchy, UniformFactory) {
  const Hierarchy h = Hierarchy::uniform(2, 3, {2.0, 1.0, 0.0});
  EXPECT_EQ(h.leaf_count(), 9);
  EXPECT_EQ(h.deg(0), 3);
  EXPECT_EQ(h.deg(1), 3);
}

TEST(Hierarchy, NormalizationSubtractsLeafMultiplier) {
  const Hierarchy h({2, 2}, {5.0, 3.0, 2.0});
  EXPECT_FALSE(h.is_normalized());
  double offset = 0;
  const Hierarchy n = h.normalized(&offset);
  EXPECT_DOUBLE_EQ(offset, 2.0);
  EXPECT_TRUE(n.is_normalized());
  EXPECT_DOUBLE_EQ(n.cm(0), 3.0);
  EXPECT_DOUBLE_EQ(n.cm(1), 1.0);
  EXPECT_DOUBLE_EQ(n.cm(2), 0.0);
}

TEST(Hierarchy, NormalizingANormalizedHierarchyIsIdentity) {
  const Hierarchy h = socket_core_ht();
  double offset = -1;
  const Hierarchy n = h.normalized(&offset);
  EXPECT_DOUBLE_EQ(offset, 0.0);
  for (int j = 0; j <= h.height(); ++j) {
    EXPECT_DOUBLE_EQ(n.cm(j), h.cm(j));
  }
}

TEST(Hierarchy, IncreasingMultipliersRejected) {
  EXPECT_THROW(Hierarchy({2}, {1.0, 2.0}), CheckError);
}

TEST(Hierarchy, NegativeMultipliersRejected) {
  EXPECT_THROW(Hierarchy({2}, {1.0, -0.5}), CheckError);
}

TEST(Hierarchy, WrongMultiplierCountRejected) {
  EXPECT_THROW(Hierarchy({2, 2}, {1.0, 0.0}), CheckError);
}

TEST(Hierarchy, ZeroFanoutRejected) {
  EXPECT_THROW(Hierarchy({0}, {1.0, 0.0}), CheckError);
}

TEST(Hierarchy, EmptyHeightRejected) {
  EXPECT_THROW(Hierarchy({}, {1.0}), CheckError);
}

TEST(Hierarchy, ToStringMentionsShape) {
  const std::string s = socket_core_ht().to_string();
  EXPECT_NE(s.find("h=3"), std::string::npos);
  EXPECT_NE(s.find("leaves=16"), std::string::npos);
}

class LcaLevelProperty : public ::testing::TestWithParam<int> {};

TEST_P(LcaLevelProperty, AncestorsAgreeExactlyUpToLcaLevel) {
  const Hierarchy h = Hierarchy::uniform(GetParam(), 2,
                                         [&] {
                                           std::vector<double> cm;
                                           for (int j = GetParam(); j >= 0; --j)
                                             cm.push_back(j);
                                           return cm;
                                         }());
  for (LeafId a = 0; a < h.leaf_count(); ++a) {
    for (LeafId b = 0; b < h.leaf_count(); ++b) {
      const int l = h.lca_level(a, b);
      for (int j = 0; j <= l; ++j) {
        EXPECT_EQ(h.leaf_ancestor(a, j), h.leaf_ancestor(b, j));
      }
      if (l < h.height()) {
        EXPECT_NE(h.leaf_ancestor(a, l + 1), h.leaf_ancestor(b, l + 1));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Heights, LcaLevelProperty, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace hgp
