// The k-BGP / Minimum Bisection special case (paper §1: HGP with h = 1,
// cm = {1, 0}, demands n/k ... here 1/cap per task).  Experiment E8's
// correctness layer.
#include <gtest/gtest.h>

#include "baseline/exact.hpp"
#include "runtime/solver.hpp"
#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/mirror.hpp"

namespace hgp {
namespace {

/// Exact minimum bisection cut weight by exhaustive enumeration (n ≤ 20,
/// n even, equal halves).
Weight exact_bisection(const Graph& g) {
  const Vertex n = g.vertex_count();
  Weight best = std::numeric_limits<Weight>::infinity();
  for (std::uint64_t mask = 0; mask < (std::uint64_t{1} << n); ++mask) {
    if (__builtin_popcountll(mask) != n / 2) continue;
    std::vector<char> side(static_cast<std::size_t>(n), 0);
    for (Vertex v = 0; v < n; ++v) side[v] = (mask >> v) & 1;
    best = std::min(best, g.cut_weight(side));
  }
  return best;
}

TEST(Kbgp, CostEqualsCutWeightUnderUnitMultipliers) {
  // With cm = {1, 0}, Eq. 1 charges exactly the weight of edges crossing
  // leaf boundaries: HGP cost == k-way cut weight.
  Rng rng(1);
  Graph g = gen::erdos_renyi(16, 0.4, rng, gen::WeightRange{1.0, 5.0});
  gen::set_kbgp_demands(g, 4);
  const Hierarchy h = Hierarchy::kbgp(4);
  Placement p;
  p.leaf_of.resize(16);
  for (Vertex v = 0; v < 16; ++v) p.leaf_of[v] = v % 4;
  double crossing = 0;
  for (const Edge& e : g.edges()) {
    if (p[e.u] != p[e.v]) crossing += e.weight;
  }
  EXPECT_NEAR(placement_cost(g, h, p), crossing, 1e-9);
}

TEST(Kbgp, ExactHgpRecoversMinimumBisection) {
  Rng rng(2);
  for (int round = 0; round < 4; ++round) {
    Graph g = gen::erdos_renyi(10, 0.5, rng, gen::WeightRange{1.0, 7.0});
    gen::set_kbgp_demands(g, 5);  // two leaves of 5 tasks each
    const Hierarchy h = Hierarchy::kbgp(2);
    const ExactResult r = solve_exact_hgp(g, h);
    ASSERT_TRUE(r.feasible);
    EXPECT_NEAR(r.cost, exact_bisection(g), 1e-9) << "round " << round;
  }
}

TEST(Kbgp, SolverSolvesBisectionWithinBicriteriaBounds) {
  Rng rng(3);
  Graph g = gen::planted_partition(20, 2, 0.8, 0.1, rng,
                                   gen::WeightRange{1.0, 3.0},
                                   gen::WeightRange{1.0, 1.0});
  gen::set_kbgp_demands(g, 10);
  const Hierarchy h = Hierarchy::kbgp(2);
  SolverOptions opt;
  opt.num_trees = 4;
  opt.epsilon = 0.5;
  const HgpResult r = solve_hgp(g, h, opt);
  // h=1 ⇒ violation ≤ (1+ε)(1+1) = 3.
  EXPECT_LE(r.loads.max_violation(), 3.0 + 1e-9);
  // Cost within a generous constant of the exact bisection (usually ≤ it,
  // thanks to the allowed imbalance).
  const Weight opt_cut = exact_bisection(g);
  EXPECT_LE(r.cost, 3.0 * opt_cut + 1e-9);
}

TEST(Kbgp, HgpStrictlyGeneralizesKbgp) {
  // The same task graph placed on a 2-level hierarchy can exploit locality
  // a flat k-partition cannot express: check costs differ in the right
  // direction when cm rewards same-socket placement.
  Rng rng(4);
  Graph g = gen::planted_partition(16, 4, 0.9, 0.05, rng);
  gen::set_kbgp_demands(g, 4);
  const Hierarchy flat({4}, {1.0, 0.0});
  const Hierarchy deep({2, 2}, {1.0, 0.2, 0.0});
  Placement clustered;
  clustered.leaf_of.resize(16);
  for (Vertex v = 0; v < 16; ++v) clustered.leaf_of[v] = v * 4 / 16;
  // Deep hierarchy discounts half the crossings (same level-1 node).
  EXPECT_LT(placement_cost(g, deep, clustered),
            placement_cost(g, flat, clustered));
}

TEST(Kbgp, MirrorIdentityHoldsInTheSpecialCase) {
  Rng rng(5);
  Graph g = gen::erdos_renyi(14, 0.4, rng);
  gen::set_kbgp_demands(g, 7);
  const Hierarchy h = Hierarchy::kbgp(2);
  Placement p;
  p.leaf_of.resize(14);
  for (Vertex v = 0; v < 14; ++v) p.leaf_of[v] = rng.next_below(2);
  const MirrorFunction m = build_mirror(g, h, p);
  EXPECT_NEAR(placement_cost(g, h, p), mirror_cost_literal(g, h, m), 1e-9);
}

}  // namespace
}  // namespace hgp
