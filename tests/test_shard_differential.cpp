// Differential correctness gate for the sharded solver: across 100+ seeded
// instances — clean runs AND runs with mid-solve shard kills, hangs and
// zombie replies that force lease expiry + reassignment — the coordinated
// solve must be BIT-IDENTICAL to the single-process solve_hgp: cost bits,
// placement, winning tree, per-tree cost bits, and per-tree DP
// feasible-state counts (compared through the two checkpoints).
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <deque>
#include <functional>
#include <thread>

#include "graph/fingerprint.hpp"
#include "graph/generators.hpp"
#include "net/channel.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "runtime/checkpoint.hpp"
#include "runtime/coordinator.hpp"
#include "runtime/shard_server.hpp"
#include "util/prng.hpp"

namespace hgp {
namespace {

struct ShardThread {
  std::thread thread;
  ShardServerReport report;
  ~ShardThread() {
    if (thread.joinable()) thread.join();
  }
};

net::Socket start_shard(std::deque<ShardThread>& pool,
                        ShardServerOptions opt = {}) {
  auto [mine, theirs] = net::socket_pair();
  ShardThread& sh = pool.emplace_back();
  sh.thread = std::thread([&sh, sock = std::move(theirs), opt]() mutable {
    net::FrameChannel ch(std::move(sock));
    sh.report = run_shard_server(ch, opt);
  });
  return std::move(mine);
}

/// Completes handshake + job, then runs `script` (see test_coordinator.cpp).
net::Socket start_scripted_shard(
    std::deque<ShardThread>& pool, const Graph& g,
    std::function<void(net::FrameChannel&)> script) {
  auto [mine, theirs] = net::socket_pair();
  const std::uint64_t fp = graph_fingerprint(g);
  ShardThread& sh = pool.emplace_back();
  sh.thread = std::thread(
      [&sh, sock = std::move(theirs), fp, script = std::move(script)]() mutable {
        try {
          net::FrameChannel ch(std::move(sock));
          const Deadline d = Deadline::after_ms(20000);
          net::handshake_server(ch, d);
          auto job = ch.recv(d);
          if (!job.has_value()) return;
          net::JobAckMsg ack;
          ack.graph_fingerprint = fp;
          ack.num_trees = net::decode_job(job->payload).num_trees;
          ch.send(net::kMsgJobAck, net::encode_job_ack(ack), d);
          script(ch);
        } catch (...) {
        }
      });
  return std::move(mine);
}

/// The fault the instance's shard fleet exhibits; rotated per seed so the
/// 100-instance sweep covers every recovery path many times over.
enum class Schedule {
  kClean,        // honest shards only
  kCrash,        // one shard dies the moment it is assigned work
  kHang,         // one shard accepts a batch then goes silent past the lease
  kZombie,       // one shard replies AFTER its lease expired (stale epoch)
  kAllLost,      // every shard crashes -> in-process degradation
};

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kClean: return "clean";
    case Schedule::kCrash: return "crash";
    case Schedule::kHang: return "hang";
    case Schedule::kZombie: return "zombie";
    case Schedule::kAllLost: return "all-lost";
  }
  return "?";
}

net::Socket crash_on_assign(std::deque<ShardThread>& pool, const Graph& g) {
  return start_scripted_shard(pool, g, [](net::FrameChannel& ch) {
    (void)ch.recv(Deadline::after_ms(20000));
    ch.close();
  });
}

net::Socket hang_on_assign(std::deque<ShardThread>& pool, const Graph& g) {
  return start_scripted_shard(pool, g, [](net::FrameChannel& ch) {
    auto frame = ch.recv(Deadline::after_ms(20000));
    if (!frame.has_value()) return;
    // Hold the socket open, silent, until the coordinator tears it down
    // (lease expiry -> cleanup shuts the channel and recv unblocks).
    (void)ch.recv(Deadline::after_ms(60000));
  });
}

net::Socket zombie_on_assign(std::deque<ShardThread>& pool, const Graph& g) {
  const std::size_t n = g.vertex_count();
  return start_scripted_shard(pool, g, [n](net::FrameChannel& ch) {
    auto frame = ch.recv(Deadline::after_ms(20000));
    if (!frame.has_value() || frame->type != net::kMsgAssign) return;
    const net::AssignMsg assign = net::decode_assign(frame->payload);
    // Outlive the 120ms lease, then deliver a hostile zero-cost result
    // under the original epoch.  The fence must discard it.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    net::BatchResultMsg stale;
    stale.epoch = assign.epoch;
    stale.batch_id = assign.batch_id;
    for (std::int32_t ti : assign.tree_indices) {
      net::TreeResultWire tree;
      tree.tree_index = ti;
      tree.status = static_cast<std::uint8_t>(StatusCode::kOk);
      tree.cost = 0.0;
      tree.leaf_of.assign(n, 0);
      stale.trees.push_back(std::move(tree));
    }
    try {
      ch.send(net::kMsgBatchResult, net::encode_batch_result(stale),
              Deadline::after_ms(5000));
    } catch (...) {
      // The coordinator may already have shut the socket; either way the
      // stale result never lands as accepted work.
    }
  });
}

struct Instance {
  std::uint64_t seed;
  Vertex n;
  int trees;
  double epsilon;
  Schedule schedule;
};

void run_instance(const Instance& in) {
  SCOPED_TRACE(::testing::Message()
               << "seed=" << in.seed << " n=" << in.n << " trees=" << in.trees
               << " eps=" << in.epsilon << " schedule="
               << schedule_name(in.schedule));

  Rng rng(in.seed);
  Graph g = gen::planted_partition(in.n, 4, 0.75, 0.05, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / static_cast<double>(in.n));
  static const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});

  SolveCheckpoint base_ck;
  SolverOptions opt;
  opt.num_trees = in.trees;
  opt.epsilon = in.epsilon;
  opt.seed = in.seed;
  opt.checkpoint = &base_ck;
  const HgpResult baseline = solve_hgp(g, h, opt);

  SolveCheckpoint shard_ck;
  SolverOptions sopt = opt;
  sopt.checkpoint = &shard_ck;
  CoordinatorOptions copt;
  copt.lease_ms =
      (in.schedule == Schedule::kHang || in.schedule == Schedule::kZombie)
          ? 120
          : 2000;

  std::deque<ShardThread> pool;
  ShardCoordinator coord(g, h, sopt, copt);
  switch (in.schedule) {
    case Schedule::kClean:
      coord.adopt_shard(start_shard(pool));
      coord.adopt_shard(start_shard(pool));
      coord.adopt_shard(start_shard(pool));
      break;
    case Schedule::kCrash:
      coord.adopt_shard(crash_on_assign(pool, g));
      coord.adopt_shard(start_shard(pool));
      break;
    case Schedule::kHang:
      coord.adopt_shard(hang_on_assign(pool, g));
      coord.adopt_shard(start_shard(pool));
      break;
    case Schedule::kZombie:
      coord.adopt_shard(zombie_on_assign(pool, g));
      coord.adopt_shard(start_shard(pool));
      break;
    case Schedule::kAllLost:
      coord.adopt_shard(crash_on_assign(pool, g));
      coord.adopt_shard(crash_on_assign(pool, g));
      break;
  }
  const HgpResult got = coord.solve();

  // --- bit-level identity ---------------------------------------------
  ASSERT_EQ(std::memcmp(&got.cost, &baseline.cost, sizeof got.cost), 0)
      << got.cost << " vs " << baseline.cost;
  ASSERT_EQ(got.placement.leaf_of, baseline.placement.leaf_of);
  ASSERT_EQ(got.best_tree, baseline.best_tree);
  ASSERT_EQ(got.method, baseline.method);
  ASSERT_EQ(got.tree_costs.size(), baseline.tree_costs.size());
  for (std::size_t i = 0; i < got.tree_costs.size(); ++i) {
    ASSERT_EQ(std::memcmp(&got.tree_costs[i], &baseline.tree_costs[i],
                          sizeof(double)),
              0)
        << "tree " << i;
  }

  // --- per-tree DP work identity (via the two checkpoints) ------------
  // Remote trees ran the very same solve_forest_tree, so even the DP's
  // internal counting must agree, not just the answer.
  ASSERT_EQ(shard_ck.size(), base_ck.size());
  for (int ti = 0; ti < in.trees; ++ti) {
    CheckpointedTree a, b;
    ASSERT_TRUE(base_ck.lookup(ti, &a)) << "tree " << ti;
    ASSERT_TRUE(shard_ck.lookup(ti, &b)) << "tree " << ti;
    EXPECT_EQ(a.stats.feasible_states, b.stats.feasible_states)
        << "tree " << ti;
    EXPECT_EQ(a.stats.signature_count, b.stats.signature_count)
        << "tree " << ti;
    EXPECT_EQ(std::memcmp(&a.cost, &b.cost, sizeof(double)), 0)
        << "tree " << ti;
    EXPECT_EQ(a.placement.leaf_of, b.placement.leaf_of) << "tree " << ti;
  }

  // --- recovery actually happened where scheduled ---------------------
  const CoordinatorReport& rep = coord.report();
  switch (in.schedule) {
    case Schedule::kClean:
      EXPECT_EQ(rep.shards_lost, 0);
      EXPECT_EQ(rep.trees_from_shards, in.trees);
      break;
    case Schedule::kCrash:
      EXPECT_GE(rep.shards_lost, 1);
      EXPECT_GE(rep.batches_reassigned, 1);
      break;
    case Schedule::kHang:
      EXPECT_GE(rep.lease_expiries, 1);
      EXPECT_GE(rep.batches_reassigned, 1);
      break;
    case Schedule::kZombie:
      EXPECT_GE(rep.lease_expiries, 1);
      break;
    case Schedule::kAllLost:
      EXPECT_EQ(rep.shards_lost, 2);
      EXPECT_TRUE(rep.degraded_inprocess);
      break;
  }
}

// 105 instances: 21 per schedule, sizes 16..30 vertices, 3..5 trees, two
// epsilons.  Fault schedules rotate so kills/hangs/zombies each hit 21
// distinct seeded instances — well past the "≥ 100 instances including
// reassignment-forcing runs" acceptance bar when the suite is green.
constexpr Schedule kRotation[5] = {Schedule::kClean, Schedule::kCrash,
                                   Schedule::kHang, Schedule::kZombie,
                                   Schedule::kAllLost};

TEST(ShardDifferential, HundredInstancesWithFaultsBitIdentical) {
  for (int i = 0; i < 105; ++i) {
    Instance in;
    in.seed = 1000 + static_cast<std::uint64_t>(i) * 17;
    in.n = static_cast<Vertex>(16 + (i % 8) * 2);
    in.trees = 3 + (i % 3);
    in.epsilon = (i % 2 == 0) ? 0.5 : 0.75;
    in.schedule = kRotation[i % 5];
    run_instance(in);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace hgp
