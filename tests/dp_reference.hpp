// Shared brute-force RHGPT reference for test binaries.
//
// Enumerates EVERY relaxed solution on tiny instances — all partitions of
// the leaves at level 1, all refinements at deeper levels, capacity-checked
// in rounded units — and evaluates the Definition-4 objective with true
// minimum separators.  This pins the signature DP's optimality directly,
// with no shared code path and no reliance on the fan-out trick.  Used by
// the dedicated brute-force suite and as the exactness anchor of the
// randomized differential harness.  Exponential: keep instances ≤ ~6
// leaves.
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "core/rhgpt.hpp"
#include "core/tree_dp.hpp"

namespace hgp::testref {

using SetList = std::vector<std::vector<Vertex>>;

/// All partitions of `items` whose blocks respect `max_units`.
inline void enumerate_partitions(
    const std::vector<Vertex>& items, const std::vector<DemandUnits>& units,
    DemandUnits max_units, const std::function<void(const SetList&)>& visit) {
  SetList current;
  std::vector<DemandUnits> load;
  auto rec = [&](auto&& self, std::size_t idx) -> void {
    if (idx == items.size()) {
      visit(current);
      return;
    }
    const Vertex item = items[idx];
    const DemandUnits u = units[static_cast<std::size_t>(item)];
    for (std::size_t b = 0; b < current.size(); ++b) {
      if (load[b] + u > max_units) continue;
      current[b].push_back(item);
      load[b] += u;
      self(self, idx + 1);
      load[b] -= u;
      current[b].pop_back();
    }
    if (u <= max_units) {
      current.push_back({item});
      load.push_back(u);
      self(self, idx + 1);
      current.pop_back();
      load.pop_back();
    }
  };
  rec(rec, 0);
}

/// Minimum Definition-4 cost over all solutions, by recursive refinement.
inline double brute_force_rhgpt(const Tree& t, const Hierarchy& h,
                                const ScaledDemands& sd) {
  double best = std::numeric_limits<double>::infinity();
  RhgptSolution sol;
  sol.sets.assign(static_cast<std::size_t>(h.height()) + 1, {});
  sol.sets[0] = {t.leaves()};

  auto rec = [&](auto&& self, int level) -> void {
    if (level > h.height()) {
      best = std::min(best, rhgpt_cost(t, h, sol));
      return;
    }
    // Refine every level-(level-1) set independently; enumerate the
    // cartesian product of their partitions.
    const SetList& parents = sol.sets[static_cast<std::size_t>(level - 1)];
    auto product = [&](auto&& pself, std::size_t pi) -> void {
      if (pi == parents.size()) {
        self(self, level + 1);
        return;
      }
      enumerate_partitions(
          parents[pi], sd.units, sd.capacity_at(level),
          [&](const SetList& blocks) {
            auto& lvl = sol.sets[static_cast<std::size_t>(level)];
            const std::size_t mark = lvl.size();
            lvl.insert(lvl.end(), blocks.begin(), blocks.end());
            pself(pself, pi + 1);
            lvl.resize(mark);
          });
    };
    product(product, 0);
  };
  rec(rec, 1);
  return best;
}

}  // namespace hgp::testref
