#include <gtest/gtest.h>

#include "baseline/exact.hpp"
#include "core/rhgpt.hpp"
#include "core/tree_dp.hpp"
#include "graph/generators.hpp"

namespace hgp {
namespace {

/// Random weighted tree with random leaf demands in [lo, hi].
Tree random_instance(Vertex n, Rng& rng, double lo = 0.2, double hi = 0.6) {
  const Graph g = gen::random_tree(n, rng, gen::WeightRange{1.0, 9.0});
  Tree t = Tree::from_graph(g, 0);
  std::vector<double> d(t.leaves().size());
  for (auto& x : d) x = rng.next_double(lo, hi);
  t.set_leaf_demands(d);
  return t;
}

TEST(TreeDp, HandComputedTwoLeafExample) {
  //      root
  //     /    \      leaves 1, 2 with demand 0.6 each; edge weights 5 and 7.
  //    1      2     k = 2 leaves, cm = {1, 0}.
  Tree t = Tree::from_parents({-1, 0, 0}, {0, 5.0, 7.0});
  t.set_leaf_demands(std::vector<double>{0.6, 0.6});
  const Hierarchy h = Hierarchy::kbgp(2);
  TreeDpOptions opt;
  opt.units_override = 10;
  const TreeDpResult r = solve_rhgpt(t, h, opt);
  // 0.6+0.6 > 1 → the leaves must split into two level-1 sets.  The
  // minimum separator of {1} is edge (root,1) with weight 5 — and the
  // minimum separator of {2} is the SAME edge (removing it also isolates
  // leaf 2 from leaf 1), so both sets pay 5: (5+5)·(1-0)/2 = 5.
  EXPECT_NEAR(r.cost, 5.0, 1e-9);
  EXPECT_EQ(r.solution.sets[1].size(), 2u);
}

TEST(TreeDp, ColocationWhenCapacityAllows) {
  Tree t = Tree::from_parents({-1, 0, 0}, {0, 5.0, 7.0});
  t.set_leaf_demands(std::vector<double>{0.4, 0.4});
  const Hierarchy h = Hierarchy::kbgp(2);
  TreeDpOptions opt;
  opt.units_override = 10;
  const TreeDpResult r = solve_rhgpt(t, h, opt);
  EXPECT_NEAR(r.cost, 0.0, 1e-9);  // both fit one leaf → nothing separated
  EXPECT_EQ(r.solution.sets[1].size(), 1u);
}

TEST(TreeDp, DpCostDominatesDefinitionCost) {
  // The DP charges each solution set its mirror-region boundary, which is a
  // valid separator, so the Definition-4 cost (true minimum separators,
  // which may reroute through other sets' territory) never exceeds the DP
  // accounting — and matches it unless rerouting pays off.
  Rng rng(1);
  int equal = 0;
  for (int round = 0; round < 8; ++round) {
    const Tree t = random_instance(14, rng);
    const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
    TreeDpOptions opt;
    opt.units_override = 8;
    const TreeDpResult r = solve_rhgpt(t, h, opt);
    const double definition = rhgpt_cost(t, h, r.solution);
    EXPECT_LE(definition, r.cost + 1e-9) << "round " << round;
    if (definition >= r.cost - 1e-9) ++equal;
  }
  // Rerouting gains are rare on random weighted trees.
  EXPECT_GE(equal, 4);
}

TEST(TreeDp, SolutionSatisfiesDefinition4) {
  Rng rng(2);
  for (int round = 0; round < 8; ++round) {
    const Tree t = random_instance(12, rng);
    const Hierarchy h({2, 3}, {4.0, 1.0, 0.0});
    TreeDpOptions opt;
    opt.epsilon = 0.5;
    const TreeDpResult r = solve_rhgpt(t, h, opt);
    // Sets respect the scaled capacities exactly (factor 1).
    EXPECT_NO_THROW(validate_rhgpt(t, h, r.scaled, r.solution, 1.0))
        << "round " << round;
  }
}

TEST(TreeDp, OutputIsANiceSolution) {
  // Theorem 3: an optimal solution with BS(s) = 0 exists; the DP only
  // explores nice shapes, so its output must have zero bad sets.
  Rng rng(3);
  for (int round = 0; round < 6; ++round) {
    const Tree t = random_instance(12, rng);
    const Hierarchy h({2, 2}, {5.0, 2.0, 0.0});
    TreeDpOptions opt;
    opt.units_override = 6;
    const TreeDpResult r = solve_rhgpt(t, h, opt);
    EXPECT_EQ(count_bad_sets(t, r.solution), 0) << "round " << round;
  }
}

TEST(TreeDp, LowerBoundsExactHgpt) {
  // RHGPT relaxes HGPT, so the DP optimum is ≤ the exact HGPT optimum.
  Rng rng(4);
  for (int round = 0; round < 6; ++round) {
    const Tree t = random_instance(8, rng, 0.3, 0.7);
    const Hierarchy h({2, 2}, {3.0, 1.0, 0.0});
    TreeDpOptions opt;
    opt.units_override = 1000;  // fine units: rounding ≈ exact
    const TreeDpResult r = solve_rhgpt(t, h, opt);
    const ExactTreeResult exact = solve_exact_hgpt(t, h);
    if (!exact.feasible) continue;
    EXPECT_LE(r.cost, exact.cost + 1e-6) << "round " << round;
  }
}

TEST(TreeDp, OptimalWhenFanoutUnbounded) {
  // With DEG[j] ≥ #jobs the refinement bound of Definition 3 is vacuous,
  // so RHGPT and HGPT coincide: the DP must match the exact optimum
  // exactly (demands are exact multiples of a unit, so no rounding slack).
  Rng rng(5);
  for (int round = 0; round < 5; ++round) {
    const Graph g = gen::random_tree(9, rng, gen::WeightRange{1.0, 9.0});
    Tree t = Tree::from_graph(g, 0);
    std::vector<double> d(t.leaves().size());
    for (auto& x : d) {
      x = 0.25 * static_cast<double>(rng.next_int(1, 3));  // {.25,.5,.75}
    }
    t.set_leaf_demands(d);
    const Vertex jobs = t.leaf_count();
    const Hierarchy h({jobs}, {1.0, 0.0});
    TreeDpOptions opt;
    opt.units_override = 4;  // exact demand representation
    const TreeDpResult r = solve_rhgpt(t, h, opt);
    const ExactTreeResult exact = solve_exact_hgpt(t, h);
    ASSERT_TRUE(exact.feasible);
    EXPECT_NEAR(r.cost, exact.cost, 1e-9) << "round " << round;
  }
}

TEST(TreeDp, CostInvariantUnderNormalization) {
  // The RHGPT objective only reads cm differences, so shifting all
  // multipliers (Lemma 1) leaves the DP cost unchanged.
  Rng rng(6);
  const Tree t = random_instance(12, rng);
  const Hierarchy ha({2, 2}, {5.0, 2.0, 0.0});
  const Hierarchy hb({2, 2}, {6.5, 3.5, 1.5});
  TreeDpOptions opt;
  opt.units_override = 6;
  const TreeDpResult ra = solve_rhgpt(t, ha, opt);
  const TreeDpResult rb = solve_rhgpt(t, hb, opt);
  EXPECT_NEAR(ra.cost, rb.cost, 1e-9);
}

TEST(TreeDp, InfeasibleInstanceThrows) {
  Tree t = Tree::from_parents({-1, 0, 0, 0}, {0, 1, 1, 1});
  t.set_leaf_demands(std::vector<double>{0.9, 0.9, 0.9});
  const Hierarchy h = Hierarchy::kbgp(2);  // total capacity 2 < 2.7
  TreeDpOptions opt;
  opt.units_override = 10;
  EXPECT_THROW(solve_rhgpt(t, h, opt), CheckError);
}

TEST(TreeDp, SingleLeafTree) {
  Tree t = Tree::from_parents({-1}, {0});
  t.set_leaf_demands(std::vector<double>{0.5});
  const Hierarchy h({2, 2}, {3.0, 1.0, 0.0});
  const TreeDpResult r = solve_rhgpt(t, h, {});
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_EQ(r.solution.sets[1].size(), 1u);
  EXPECT_EQ(r.solution.sets[2].size(), 1u);
}

TEST(TreeDp, DeterministicResults) {
  Rng rng(7);
  const Tree t = random_instance(15, rng);
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  TreeDpOptions opt;
  opt.units_override = 6;
  const TreeDpResult a = solve_rhgpt(t, h, opt);
  const TreeDpResult b = solve_rhgpt(t, h, opt);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.solution.sets, b.solution.sets);
}

TEST(TreeDp, StatsArePopulated) {
  Rng rng(8);
  const Tree t = random_instance(10, rng);
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  TreeDpOptions opt;
  opt.units_override = 4;
  const TreeDpResult r = solve_rhgpt(t, h, opt);
  EXPECT_GT(r.stats.signature_count, 0u);
  EXPECT_GT(r.stats.feasible_states, 0u);
  EXPECT_GT(r.stats.merge_operations, 0u);
}

TEST(TreeDp, HeightThreeHierarchy) {
  Rng rng(9);
  const Tree t = random_instance(10, rng, 0.3, 0.5);
  const Hierarchy h({2, 2, 2}, {8.0, 4.0, 1.0, 0.0});
  TreeDpOptions opt;
  opt.units_override = 3;
  const TreeDpResult r = solve_rhgpt(t, h, opt);
  EXPECT_NEAR(r.cost, rhgpt_cost(t, h, r.solution), 1e-9);
  EXPECT_NO_THROW(validate_rhgpt(t, h, r.scaled, r.solution, 1.0));
  EXPECT_EQ(count_bad_sets(t, r.solution), 0);
}

}  // namespace
}  // namespace hgp
