#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "hierarchy/cost.hpp"
#include "hierarchy/diagnostics.hpp"

namespace hgp {
namespace {

TEST(Diagnostics, BreakdownSumsToTheObjective) {
  Rng rng(1);
  Graph g = gen::erdos_renyi(20, 0.3, rng, gen::WeightRange{1.0, 6.0});
  gen::set_uniform_demands(g, 0.2);
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  Placement p;
  p.leaf_of.resize(20);
  for (auto& l : p.leaf_of) l = narrow<LeafId>(rng.next_below(4));
  const TrafficBreakdown b = traffic_breakdown(g, h, p);
  EXPECT_NEAR(b.total_cost, placement_cost(g, h, p), 1e-9);
  double vol = 0;
  for (double x : b.volume) vol += x;
  EXPECT_NEAR(vol, g.total_edge_weight(), 1e-9);
  EXPECT_NEAR(b.total_volume, vol, 1e-9);
}

TEST(Diagnostics, SharesPartitionTheVolume) {
  Rng rng(2);
  Graph g = gen::planted_partition(16, 4, 0.8, 0.1, rng);
  gen::set_uniform_demands(g, 0.2);
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  Placement clustered;
  clustered.leaf_of.resize(16);
  for (Vertex v = 0; v < 16; ++v) clustered.leaf_of[v] = v * 4 / 16;
  const TrafficBreakdown b = traffic_breakdown(g, h, clustered);
  double total_share = 0;
  for (int l = 0; l <= 2; ++l) total_share += b.share_at(l);
  EXPECT_NEAR(total_share, 1.0, 1e-9);
  // Clustered placement keeps the co-located share dominant.
  EXPECT_GT(b.share_at(2), b.share_at(0));
}

TEST(Diagnostics, ReportMentionsEveryLevel) {
  GraphBuilder bg(2);
  bg.add_edge(0, 1, 3.0);
  bg.set_demand(0, 0.5);
  bg.set_demand(1, 0.5);
  const Graph g = bg.build();
  const Hierarchy h({2}, {1.0, 0.0});
  const std::string report = diagnostics_report(g, h, Placement{{0, 1}});
  EXPECT_NE(report.find("crosses the root"), std::string::npos);
  EXPECT_NE(report.find("co-located"), std::string::npos);
  EXPECT_NE(report.find("violation"), std::string::npos);
}

}  // namespace
}  // namespace hgp
