// Independent brute-force RHGPT reference.
//
// Enumerates EVERY relaxed solution on tiny instances — all partitions of
// the leaves at level 1, all refinements at deeper levels, capacity-checked
// in rounded units — and evaluates the Definition-4 objective with true
// minimum separators.  This pins the signature DP's optimality directly,
// with no shared code path and no reliance on the fan-out trick.
#include <gtest/gtest.h>

#include <limits>

#include "core/rhgpt.hpp"
#include "core/tree_dp.hpp"
#include "graph/generators.hpp"

namespace hgp {
namespace {

using SetList = std::vector<std::vector<Vertex>>;

/// All partitions of `items` whose blocks respect `max_units`.
void enumerate_partitions(const std::vector<Vertex>& items,
                          const std::vector<DemandUnits>& units,
                          DemandUnits max_units,
                          const std::function<void(const SetList&)>& visit) {
  SetList current;
  std::vector<DemandUnits> load;
  auto rec = [&](auto&& self, std::size_t idx) -> void {
    if (idx == items.size()) {
      visit(current);
      return;
    }
    const Vertex item = items[idx];
    const DemandUnits u = units[static_cast<std::size_t>(item)];
    for (std::size_t b = 0; b < current.size(); ++b) {
      if (load[b] + u > max_units) continue;
      current[b].push_back(item);
      load[b] += u;
      self(self, idx + 1);
      load[b] -= u;
      current[b].pop_back();
    }
    if (u <= max_units) {
      current.push_back({item});
      load.push_back(u);
      self(self, idx + 1);
      current.pop_back();
      load.pop_back();
    }
  };
  rec(rec, 0);
}

/// Minimum Definition-4 cost over all solutions, by recursive refinement.
double brute_force_rhgpt(const Tree& t, const Hierarchy& h,
                         const ScaledDemands& sd) {
  double best = std::numeric_limits<double>::infinity();
  RhgptSolution sol;
  sol.sets.assign(static_cast<std::size_t>(h.height()) + 1, {});
  sol.sets[0] = {t.leaves()};

  auto rec = [&](auto&& self, int level) -> void {
    if (level > h.height()) {
      best = std::min(best, rhgpt_cost(t, h, sol));
      return;
    }
    // Refine every level-(level-1) set independently; enumerate the
    // cartesian product of their partitions.
    const SetList& parents = sol.sets[static_cast<std::size_t>(level - 1)];
    auto product = [&](auto&& pself, std::size_t pi) -> void {
      if (pi == parents.size()) {
        self(self, level + 1);
        return;
      }
      enumerate_partitions(
          parents[pi], sd.units, sd.capacity_at(level),
          [&](const SetList& blocks) {
            auto& lvl = sol.sets[static_cast<std::size_t>(level)];
            const std::size_t mark = lvl.size();
            lvl.insert(lvl.end(), blocks.begin(), blocks.end());
            pself(pself, pi + 1);
            lvl.resize(mark);
          });
    };
    product(product, 0);
  };
  rec(rec, 1);
  return best;
}

class BruteForceGrid
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BruteForceGrid, DpMatchesExhaustiveEnumeration) {
  const int height = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed * 101);
  const Graph g = gen::random_tree(10, rng, gen::WeightRange{1.0, 9.0});
  Tree t = Tree::from_graph(g, 0);
  std::vector<double> d(t.leaves().size());
  for (auto& x : d) x = rng.next_double(0.25, 0.65);
  t.set_leaf_demands(d);
  if (t.leaf_count() > 6) GTEST_SKIP() << "instance too large to enumerate";

  std::vector<double> cm;
  for (int j = height; j >= 0; --j) cm.push_back(2.0 * j);
  const Hierarchy h = Hierarchy::uniform(height, 2, cm);
  if (t.total_demand() > static_cast<double>(h.capacity(0))) GTEST_SKIP();

  TreeDpOptions opt;
  opt.units_override = 4;
  const TreeDpResult dp = solve_rhgpt(t, h, opt);
  // Re-derive the exact rounding the DP used.
  const double brute = brute_force_rhgpt(t, h, dp.scaled);
  EXPECT_NEAR(dp.cost, brute, 1e-9)
      << "h=" << height << " seed=" << seed << " jobs=" << t.leaf_count();
}

INSTANTIATE_TEST_SUITE_P(
    Tiny, BruteForceGrid,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull,
                                         7ull, 8ull)));

TEST(BruteForce, HandVerifiedStar) {
  // Star with three leaves, weights 2/3/9, demands forcing a 2+1 split.
  Tree t = Tree::from_parents({-1, 0, 0, 0}, {0, 2.0, 3.0, 9.0});
  t.set_leaf_demands(std::vector<double>{0.5, 0.5, 0.5});
  const Hierarchy h = Hierarchy::kbgp(2);
  TreeDpOptions opt;
  opt.units_override = 4;
  const TreeDpResult dp = solve_rhgpt(t, h, opt);
  const double brute = brute_force_rhgpt(t, h, dp.scaled);
  EXPECT_NEAR(dp.cost, brute, 1e-9);
  // Best split keeps the w=9 leaf with one light leaf: separate the other
  // light leaf (its separator = its own edge, and the big set's separator
  // is the same edge): cost = 2 · min(2,3) · (1/2) = 2.
  EXPECT_NEAR(dp.cost, 2.0, 1e-9);
}

}  // namespace
}  // namespace hgp
