// Independent brute-force RHGPT reference (oracle in dp_reference.hpp).
//
// Pins the signature DP's optimality directly against exhaustive
// enumeration, with no shared code path and no reliance on the fan-out
// trick.
#include <gtest/gtest.h>

#include "core/rhgpt.hpp"
#include "core/tree_dp.hpp"
#include "dp_reference.hpp"
#include "graph/generators.hpp"

namespace hgp {
namespace {

using testref::brute_force_rhgpt;

class BruteForceGrid
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(BruteForceGrid, DpMatchesExhaustiveEnumeration) {
  const int height = std::get<0>(GetParam());
  const std::uint64_t seed = std::get<1>(GetParam());
  Rng rng(seed * 101);
  const Graph g = gen::random_tree(10, rng, gen::WeightRange{1.0, 9.0});
  Tree t = Tree::from_graph(g, 0);
  std::vector<double> d(t.leaves().size());
  for (auto& x : d) x = rng.next_double(0.25, 0.65);
  t.set_leaf_demands(d);
  if (t.leaf_count() > 6) GTEST_SKIP() << "instance too large to enumerate";

  std::vector<double> cm;
  for (int j = height; j >= 0; --j) cm.push_back(2.0 * j);
  const Hierarchy h = Hierarchy::uniform(height, 2, cm);
  if (t.total_demand() > static_cast<double>(h.capacity(0))) GTEST_SKIP();

  TreeDpOptions opt;
  opt.units_override = 4;
  const TreeDpResult dp = solve_rhgpt(t, h, opt);
  // Re-derive the exact rounding the DP used.
  const double brute = brute_force_rhgpt(t, h, dp.scaled);
  EXPECT_NEAR(dp.cost, brute, 1e-9)
      << "h=" << height << " seed=" << seed << " jobs=" << t.leaf_count();
}

INSTANTIATE_TEST_SUITE_P(
    Tiny, BruteForceGrid,
    ::testing::Combine(::testing::Values(1, 2),
                       ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull, 6ull,
                                         7ull, 8ull)));

TEST(BruteForce, HandVerifiedStar) {
  // Star with three leaves, weights 2/3/9, demands forcing a 2+1 split.
  Tree t = Tree::from_parents({-1, 0, 0, 0}, {0, 2.0, 3.0, 9.0});
  t.set_leaf_demands(std::vector<double>{0.5, 0.5, 0.5});
  const Hierarchy h = Hierarchy::kbgp(2);
  TreeDpOptions opt;
  opt.units_override = 4;
  const TreeDpResult dp = solve_rhgpt(t, h, opt);
  const double brute = brute_force_rhgpt(t, h, dp.scaled);
  EXPECT_NEAR(dp.cost, brute, 1e-9);
  // Best split keeps the w=9 leaf with one light leaf: separate the other
  // light leaf (its separator = its own edge, and the big set's separator
  // is the same edge): cost = 2 · min(2,3) · (1/2) = 2.
  EXPECT_NEAR(dp.cost, 2.0, 1e-9);
}

}  // namespace
}  // namespace hgp
