// The dummy-leaf reduction (§3): partitioning all nodes of a tree via
// leaves-only HGPT on the modified tree.
#include <gtest/gtest.h>

#include "baseline/exact.hpp"
#include "core/all_nodes.hpp"
#include "graph/generators.hpp"

namespace hgp {
namespace {

Tree chain4() {
  // 0 - 1 - 2 - 3 rooted at 0; only node 3 is a leaf.
  return Tree::from_parents({-1, 0, 1, 2}, {0, 5.0, 1.0, 5.0});
}

TEST(AllNodes, ReductionShape) {
  const Tree t = chain4();
  const auto red = reduce_all_nodes(t, {0.5, 0.5, 0.5, 0.5});
  // 3 internal nodes gain dummies.
  EXPECT_EQ(red.tree.node_count(), 7);
  EXPECT_EQ(red.tree.leaf_count(), 4);
  for (Vertex v = 0; v < 4; ++v) {
    const Vertex leaf = red.job_leaf[static_cast<std::size_t>(v)];
    EXPECT_TRUE(red.tree.is_leaf(leaf));
    EXPECT_DOUBLE_EQ(red.tree.demand(leaf), 0.5);
    if (!t.is_leaf(v)) {
      EXPECT_EQ(red.tree.parent(leaf), v);
      EXPECT_TRUE(red.tree.parent_edge_infinite(leaf))
          << "dummy edges must be uncuttable";
    }
  }
}

TEST(AllNodes, DummyTravelsWithItsNode) {
  const Tree t = chain4();
  const auto red = reduce_all_nodes(t, {0.5, 0.5, 0.5, 0.5});
  // Separating {dummy of node 0} pulls node 0 along: the uncuttable dummy
  // edge forces the separator to cut the real edge (0,1) instead.
  std::vector<char> s(static_cast<std::size_t>(red.tree.node_count()), 0);
  const Vertex dummy0 = red.job_leaf[0];
  s[static_cast<std::size_t>(dummy0)] = 1;
  const auto sep = red.tree.leaf_separator(s);
  ASSERT_TRUE(sep.feasible);
  EXPECT_DOUBLE_EQ(sep.weight, 5.0);  // edge (0,1), not the dummy edge
  EXPECT_EQ(sep.s_side[static_cast<std::size_t>(dummy0)], sep.s_side[0])
      << "node 0 must stay on its dummy's side";
}

TEST(AllNodes, CostEqualsDirectLcaCostOnTheOriginalTree) {
  // For an all-nodes assignment, the reduced tree's HGPT objective equals
  // Σ_{edges of T} cm(LCA(hosts)) · w — the Lemma-2 identity carried
  // through the reduction.
  Rng rng(3);
  for (int round = 0; round < 5; ++round) {
    const Graph g = gen::random_tree(10, rng, gen::WeightRange{1.0, 9.0});
    const Tree t = Tree::from_graph(g, 0);
    std::vector<double> demand(static_cast<std::size_t>(t.node_count()));
    for (auto& d : demand) d = rng.next_double(0.2, 0.45);
    const Hierarchy h({2, 2}, {3.0, 1.0, 0.0});
    TreeSolverOptions opt;
    opt.units_override = 8;
    const AllNodesSolution sol = solve_hgpt_all_nodes(t, demand, h, opt);
    double direct = 0;
    for (Vertex v = 0; v < t.node_count(); ++v) {
      if (v == t.root()) continue;
      direct += h.cm(h.lca_level(
                    sol.leaf_of[static_cast<std::size_t>(v)],
                    sol.leaf_of[static_cast<std::size_t>(t.parent(v))])) *
                t.parent_weight(v);
    }
    EXPECT_NEAR(sol.cost, direct, 1e-9) << "round " << round;
  }
}

TEST(AllNodes, MatchesExactOnTinyChain) {
  const Tree t = chain4();
  const std::vector<double> demand{0.4, 0.4, 0.4, 0.4};
  const Hierarchy h = Hierarchy::kbgp(2);
  TreeSolverOptions opt;
  opt.units_override = 10;
  const AllNodesSolution sol = solve_hgpt_all_nodes(t, demand, h, opt);
  // Optimal: split at the cheap middle edge (1,2): {0,1} | {2,3}.
  // Each side's separator is that edge: cost 2 · 1.0 / 2 = 1.
  EXPECT_NEAR(sol.cost, 1.0, 1e-9);
  EXPECT_EQ(sol.leaf_of[0], sol.leaf_of[1]);
  EXPECT_EQ(sol.leaf_of[2], sol.leaf_of[3]);
  EXPECT_NE(sol.leaf_of[0], sol.leaf_of[2]);

  // Exact search over the reduced tree agrees.
  const auto red = reduce_all_nodes(t, demand);
  const ExactTreeResult exact = solve_exact_hgpt(red.tree, h);
  ASSERT_TRUE(exact.feasible);
  EXPECT_NEAR(exact.cost, 1.0, 1e-9);
}

TEST(AllNodes, ViolationBoundStillHolds) {
  Rng rng(7);
  const Graph g = gen::random_tree(14, rng, gen::WeightRange{1.0, 6.0});
  const Tree t = Tree::from_graph(g, 0);
  std::vector<double> demand(static_cast<std::size_t>(t.node_count()));
  for (auto& d : demand) d = rng.next_double(0.1, 0.3);
  const Hierarchy h({2, 2}, {3.0, 1.0, 0.0});
  TreeSolverOptions opt;
  opt.epsilon = 0.5;
  const AllNodesSolution sol = solve_hgpt_all_nodes(t, demand, h, opt);
  for (int j = 0; j <= h.height(); ++j) {
    EXPECT_LE(sol.violation[static_cast<std::size_t>(j)],
              (1 + 0.5) * (1 + j) + 1e-9);
  }
}

TEST(AllNodes, RejectsBadDemands) {
  const Tree t = chain4();
  EXPECT_THROW(reduce_all_nodes(t, {0.5, 0.5, 0.5}), CheckError);  // size
  EXPECT_THROW(reduce_all_nodes(t, {0.5, 0.0, 0.5, 0.5}), CheckError);
  EXPECT_THROW(reduce_all_nodes(t, {0.5, 1.5, 0.5, 0.5}), CheckError);
}

}  // namespace
}  // namespace hgp
