// Randomized differential harness for the DP hot-path optimizations.
//
// Every seed builds a random instance (tree shape, edge weights, demands,
// hierarchy height/degree/multipliers, rounding resolution) and solves it
// under several DP configurations that must agree exactly:
//   * pruning ON vs pruning OFF (dominance pruning is provably lossless);
//   * sequential vs parallel subtree DP (scheduling must be bit-identical);
//   * DP vs the exhaustive brute-force oracle on instances small enough to
//     enumerate (dp_reference.hpp).
// Any mismatch prints the seed so the instance can be replayed in
// isolation.  The HGP_DP_PRUNE environment knob is read once per process;
// CI runs this whole binary under both HGP_DP_PRUNE=1 and =0, which drags
// every in-process configuration through both global modes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/rhgpt.hpp"
#include "core/tree_dp.hpp"
#include "dp_reference.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_pool.hpp"
#include "util/prng.hpp"

namespace hgp {
namespace {

struct Instance {
  Tree tree;
  Hierarchy hierarchy;
  DemandUnits units = 2;
};

/// Deterministically derives one random instance from `seed`, sized so the
/// full 200-seed sweep stays in test-suite time (deeper hierarchies get
/// smaller trees and coarser rounding — the signature space is the cost
/// driver, not the tree).
Instance make_instance(std::uint64_t seed) {
  Rng rng(seed * 7919 + 17);
  const int height = 1 + static_cast<int>(seed % 3);
  int max_n = 40;
  DemandUnits max_units = 8;
  if (height == 2) {
    max_n = 24;
    max_units = 5;
  } else if (height == 3) {
    max_n = 12;
    max_units = 3;
  }
  const auto n = static_cast<Vertex>(rng.next_int(6, max_n));
  const int deg = static_cast<int>(rng.next_int(2, 3));
  const Graph g =
      gen::random_tree(n, rng, gen::WeightRange{1.0, 9.0});
  Tree t = Tree::from_graph(g, 0);

  // Strictly decreasing cost multipliers ending at cm(h) = 0.
  std::vector<double> cm(static_cast<std::size_t>(height) + 1, 0.0);
  double acc = 0.0;
  for (int j = height - 1; j >= 0; --j) {
    acc += rng.next_double(0.5, 4.0);
    cm[static_cast<std::size_t>(j)] = acc;
  }
  Hierarchy h = Hierarchy::uniform(height, deg, std::move(cm));

  // Demands targeting a random fill of the root capacity, clamped to the
  // (0,1] leaf-demand domain; rescale if rounding pressure overshoots.
  const double cap0 = static_cast<double>(h.capacity(0));
  const double fill = rng.next_double(0.3, 0.85);
  const double mean = fill * cap0 / static_cast<double>(t.leaf_count());
  std::vector<double> d(static_cast<std::size_t>(t.leaf_count()));
  double total = 0.0;
  for (double& x : d) {
    x = std::clamp(mean * rng.next_double(0.4, 1.6), 0.02, 1.0);
    total += x;
  }
  if (total > fill * cap0) {
    for (double& x : d) x = std::max(0.02, x * fill * cap0 / total);
  }
  t.set_leaf_demands(d);

  Instance inst{std::move(t), std::move(h)};
  inst.units = static_cast<DemandUnits>(rng.next_int(2, max_units));
  return inst;
}

TreeDpResult run_dp(const Instance& inst, bool prune, ThreadPool* pool) {
  TreeDpOptions opt;
  opt.units_override = inst.units;
  opt.prune_dominated = prune;
  opt.pool = pool;
  opt.min_parallel_nodes = 2;  // force the parallel phase on small trees
  return solve_rhgpt(inst.tree, inst.hierarchy, opt);
}

TEST(DpDifferential, TwoHundredSeedsAgreeAcrossConfigurations) {
  ThreadPool pool(4);
  int brute_checked = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const Instance inst = make_instance(seed);
    SCOPED_TRACE(::testing::Message()
                 << "seed=" << seed << " leaves=" << inst.tree.leaf_count()
                 << " h=" << inst.hierarchy.height()
                 << " units=" << inst.units);

    const TreeDpResult baseline = run_dp(inst, /*prune=*/false, nullptr);
    const TreeDpResult pruned = run_dp(inst, /*prune=*/true, nullptr);
    const TreeDpResult parallel = run_dp(inst, /*prune=*/true, &pool);

    // Pruning is lossless: same optimum, never more surviving states.
    ASSERT_NEAR(baseline.cost, pruned.cost, 1e-9);
    ASSERT_LE(pruned.stats.feasible_states, baseline.stats.feasible_states);

    // Parallel subtree scheduling is bit-identical to the sequential
    // sweep: same optimum AND the same amount of DP work.
    ASSERT_EQ(pruned.cost, parallel.cost);
    ASSERT_EQ(pruned.stats.feasible_states, parallel.stats.feasible_states);
    ASSERT_EQ(pruned.stats.merge_operations, parallel.stats.merge_operations);
    ASSERT_EQ(pruned.stats.states_pruned, parallel.stats.states_pruned);

    // The reported cost is the Definition-4 cost of the reported solution.
    ASSERT_NEAR(pruned.cost,
                rhgpt_cost(inst.tree, inst.hierarchy, pruned.solution), 1e-9);

    // Exhaustive oracle on instances small enough to enumerate.
    if (inst.tree.leaf_count() <= 5 && inst.hierarchy.height() <= 2) {
      ++brute_checked;
      const double brute = testref::brute_force_rhgpt(
          inst.tree, inst.hierarchy, pruned.scaled);
      ASSERT_NEAR(pruned.cost, brute, 1e-9);
    }
  }
  // The size distribution must keep feeding the oracle; if a generator
  // change starves it, this fails loudly instead of silently weakening.
  EXPECT_GE(brute_checked, 3);
}

TEST(DpDifferential, ParallelPhaseActuallyRuns) {
  // A solve large enough for plan_subtrees to emit tasks — guards against
  // the parallel path silently degrading to sequential forever.
  ThreadPool pool(4);
  Rng rng(42);
  const Graph g = gen::random_tree(300, rng, gen::WeightRange{1.0, 5.0});
  Tree t = Tree::from_graph(g, 0);
  std::vector<double> d(static_cast<std::size_t>(t.leaf_count()));
  for (double& x : d) x = rng.next_double(0.01, 0.03);
  t.set_leaf_demands(d);
  const Hierarchy h = Hierarchy::uniform(2, 4, {4.0, 1.0, 0.0});

  TreeDpOptions seq;
  seq.units_override = 3;
  TreeDpOptions par = seq;
  par.pool = &pool;
  const TreeDpResult a = solve_rhgpt(t, h, seq);
  const TreeDpResult b = solve_rhgpt(t, h, par);
  EXPECT_GT(b.stats.subtree_tasks, 1u);
  EXPECT_EQ(a.stats.subtree_tasks, 0u);
  EXPECT_EQ(a.cost, b.cost);
  EXPECT_EQ(a.stats.merge_operations, b.stats.merge_operations);
  EXPECT_EQ(a.stats.feasible_states, b.stats.feasible_states);
}

TEST(DpDifferential, WorkerThreadFallsBackToSequentialDp) {
  // A DP called from inside one of the pool's own workers must not fan
  // subtrees back into that pool (deadlock risk); it runs sequentially.
  ThreadPool pool(2);
  Rng rng(7);
  const Graph g = gen::random_tree(200, rng, gen::WeightRange{1.0, 5.0});
  Tree t = Tree::from_graph(g, 0);
  std::vector<double> d(static_cast<std::size_t>(t.leaf_count()));
  for (double& x : d) x = rng.next_double(0.01, 0.03);
  t.set_leaf_demands(d);
  const Hierarchy h = Hierarchy::uniform(1, 8, {2.0, 0.0});

  TreeDpOptions opt;
  opt.units_override = 2;
  opt.pool = &pool;
  const TreeDpResult nested =
      pool.submit([&] { return solve_rhgpt(t, h, opt); }).get();
  EXPECT_EQ(nested.stats.subtree_tasks, 0u);
  const TreeDpResult outer = solve_rhgpt(t, h, opt);
  EXPECT_EQ(nested.cost, outer.cost);
}

}  // namespace
}  // namespace hgp
