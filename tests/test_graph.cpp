#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.hpp"
#include "graph/union_find.hpp"

namespace hgp {
namespace {

Graph triangle_plus_pendant() {
  // 0-1-2 triangle with weights 1,2,3; pendant 3 hanging off 0 with weight 5.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 2.0);
  b.add_edge(0, 2, 3.0);
  b.add_edge(0, 3, 5.0);
  return b.build();
}

TEST(Graph, CountsAndTotalWeight) {
  const Graph g = triangle_plus_pendant();
  EXPECT_EQ(g.vertex_count(), 4);
  EXPECT_EQ(g.edge_count(), 4);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 11.0);
}

TEST(Graph, AdjacencyIsSymmetric) {
  const Graph g = triangle_plus_pendant();
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    for (const HalfEdge& h : g.neighbors(v)) {
      const auto back = g.neighbors(h.to);
      const bool found = std::any_of(back.begin(), back.end(),
                                     [&](const HalfEdge& r) {
                                       return r.to == v && r.weight == h.weight;
                                     });
      EXPECT_TRUE(found) << "edge " << v << "->" << h.to << " not mirrored";
    }
  }
}

TEST(Graph, WeightedDegree) {
  const Graph g = triangle_plus_pendant();
  EXPECT_DOUBLE_EQ(g.weighted_degree(0), 1.0 + 3.0 + 5.0);
  EXPECT_DOUBLE_EQ(g.weighted_degree(3), 5.0);
}

TEST(Graph, ParallelEdgesAreMerged) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 0, 2.5);
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_DOUBLE_EQ(g.edge(0).weight, 3.5);
}

TEST(Graph, SelfLoopsAreDropped) {
  GraphBuilder b(2);
  b.add_edge(0, 0, 9.0);
  b.add_edge(0, 1, 1.0);
  const Graph g = b.build();
  EXPECT_EQ(g.edge_count(), 1);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 1.0);
}

TEST(Graph, EdgesAreCanonicalized) {
  GraphBuilder b(3);
  b.add_edge(2, 0, 1.0);
  const Graph g = b.build();
  EXPECT_EQ(g.edge(0).u, 0);
  EXPECT_EQ(g.edge(0).v, 2);
}

TEST(Graph, NegativeWeightRejected) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 1, -1.0), CheckError);
}

TEST(Graph, OutOfRangeVertexRejected) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2, 1.0), CheckError);
}

TEST(Graph, CutWeightOfBipartition) {
  const Graph g = triangle_plus_pendant();
  // {0,3} vs {1,2}: edges 0-1 (1) and 0-2 (3) cross.
  std::vector<char> side{1, 0, 0, 1};
  EXPECT_DOUBLE_EQ(g.cut_weight(side), 4.0);
}

TEST(Graph, CutWeightAllSameSideIsZero) {
  const Graph g = triangle_plus_pendant();
  EXPECT_DOUBLE_EQ(g.cut_weight(std::vector<char>(4, 1)), 0.0);
}

TEST(Graph, ComponentsOnDisconnectedGraph) {
  GraphBuilder b(5);
  b.add_edge(0, 1, 1.0);
  b.add_edge(2, 3, 1.0);
  const Graph g = b.build();
  Vertex k = 0;
  const auto comp = g.components(&k);
  EXPECT_EQ(k, 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, ConnectedGraphHasOneComponent) {
  EXPECT_TRUE(triangle_plus_pendant().is_connected());
}

TEST(Graph, InducedSubgraphKeepsInternalEdges) {
  const Graph g = triangle_plus_pendant();
  const std::vector<Vertex> keep{0, 1, 2};
  const Graph sub = g.induced_subgraph(keep);
  EXPECT_EQ(sub.vertex_count(), 3);
  EXPECT_EQ(sub.edge_count(), 3);  // pendant edge dropped
  EXPECT_DOUBLE_EQ(sub.total_edge_weight(), 6.0);
}

TEST(Graph, InducedSubgraphRemapsIds) {
  const Graph g = triangle_plus_pendant();
  const std::vector<Vertex> keep{3, 0};  // order defines new ids
  const Graph sub = g.induced_subgraph(keep);
  EXPECT_EQ(sub.vertex_count(), 2);
  ASSERT_EQ(sub.edge_count(), 1);
  EXPECT_DOUBLE_EQ(sub.edge(0).weight, 5.0);
}

TEST(Graph, InducedSubgraphCarriesDemands) {
  Graph g = triangle_plus_pendant();
  g.set_demands({0.1, 0.2, 0.3, 0.4});
  const std::vector<Vertex> keep{2, 3};
  const Graph sub = g.induced_subgraph(keep);
  ASSERT_TRUE(sub.has_demands());
  EXPECT_DOUBLE_EQ(sub.demand(0), 0.3);
  EXPECT_DOUBLE_EQ(sub.demand(1), 0.4);
}

TEST(Graph, DemandsValidation) {
  Graph g = triangle_plus_pendant();
  EXPECT_FALSE(g.has_demands());
  EXPECT_THROW(g.set_demands({0.5}), CheckError);  // wrong size
  g.set_demands({0.5, 0.5, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(g.total_demand(), 2.0);
}

TEST(Graph, BuilderDemandRangeEnforced) {
  GraphBuilder b(2);
  EXPECT_THROW(b.set_demand(0, 0.0), CheckError);
  EXPECT_THROW(b.set_demand(0, 1.5), CheckError);
  b.set_demand(0, 1.0);
  b.set_demand(1, 0.25);
  const Graph g = b.build();
  EXPECT_DOUBLE_EQ(g.demand(1), 0.25);
}

TEST(Graph, BuilderPartialDemandsRejected) {
  GraphBuilder b(2);
  b.set_demand(0, 0.5);  // vertex 1 left unset
  EXPECT_THROW(b.build(), CheckError);
}

TEST(UnionFind, BasicUnion) {
  UnionFind uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_FALSE(uf.unite(0, 2));
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_TRUE(uf.same(0, 2));
  EXPECT_FALSE(uf.same(0, 3));
  EXPECT_EQ(uf.set_size(2), 3u);
}

TEST(UnionFind, SingletonSizes) {
  UnionFind uf(3);
  EXPECT_EQ(uf.set_size(0), 1u);
  EXPECT_EQ(uf.find(2), 2u);
}

}  // namespace
}  // namespace hgp
