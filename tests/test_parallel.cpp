#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace hgp {
namespace {

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  auto f = pool.submit([] { return std::string("inline"); });
  EXPECT_EQ(f.get(), "inline");
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

class ParallelForSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelForSizes, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  const std::size_t n = GetParam();
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, 0, n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

INSTANTIATE_TEST_SUITE_P(Sizes, ParallelForSizes,
                         ::testing::Values(0, 1, 2, 3, 7, 64, 1000));

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, ExceptionIsRethrownOnce) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for(pool, 0, 100,
                   [](std::size_t i) {
                     if (i == 50) throw std::runtime_error("dead");
                   }),
      std::runtime_error);
}

TEST(ParallelMap, ProducesOrderedResults) {
  ThreadPool pool(3);
  auto out = parallel_map(pool, 50, [](std::size_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 50u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::int64_t> part(n);
  parallel_for(pool, 0, n, [&](std::size_t i) {
    part[i] = static_cast<std::int64_t>(i);
  });
  const auto sum = std::accumulate(part.begin(), part.end(), std::int64_t{0});
  EXPECT_EQ(sum, static_cast<std::int64_t>(n * (n - 1) / 2));
}

}  // namespace
}  // namespace hgp
