#include <gtest/gtest.h>

#include "decomp/cutter.hpp"
#include "graph/generators.hpp"

namespace hgp {
namespace {

Graph two_cliques_bridge(Weight bridge) {
  GraphBuilder b(10);
  for (Vertex u = 0; u < 5; ++u)
    for (Vertex v = u + 1; v < 5; ++v) b.add_edge(u, v, 1.0);
  for (Vertex u = 5; u < 10; ++u)
    for (Vertex v = u + 1; v < 10; ++v) b.add_edge(u, v, 1.0);
  b.add_edge(0, 5, bridge);
  return b.build();
}

int ones(const std::vector<char>& side) {
  int n = 0;
  for (char c : side) n += c;
  return n;
}

TEST(Cutters, AllProduceProperBipartitions) {
  Rng rng(1);
  Graph g = gen::erdos_renyi(24, 0.3, rng, gen::WeightRange{1.0, 5.0});
  if (!g.is_connected()) GTEST_SKIP();
  const SpectralCutter spectral;
  const FmCutter fm;
  const RandomCutter random;
  const MinCutCutter mincut;
  for (const Cutter* c :
       std::vector<const Cutter*>{&spectral, &fm, &random, &mincut}) {
    Rng local(2);
    const auto side = c->cut(g, local);
    ASSERT_EQ(side.size(), 24u) << c->name();
    EXPECT_GT(ones(side), 0) << c->name();
    EXPECT_LT(ones(side), 24) << c->name();
  }
}

TEST(Cutters, MinCutFindsTheBridge) {
  const Graph g = two_cliques_bridge(0.5);
  Rng rng(3);
  const MinCutCutter mincut;
  const auto side = g.cut_weight(mincut.cut(g, rng));
  EXPECT_DOUBLE_EQ(side, 0.5);
}

TEST(Cutters, FmImprovesOrMatchesSpectral) {
  Rng rng(4);
  Graph g = gen::planted_partition(40, 2, 0.6, 0.08, rng);
  const SpectralCutter spectral;
  const FmCutter fm;
  Rng r1(5), r2(5);
  const Weight ws = g.cut_weight(spectral.cut(g, r1));
  const Weight wf = g.cut_weight(fm.cut(g, r2));
  EXPECT_LE(wf, ws + 1e-9);
}

TEST(Cutters, FmRefineNeverWorsens) {
  Rng rng(6);
  for (int round = 0; round < 5; ++round) {
    Graph g = gen::erdos_renyi(30, 0.25, rng, gen::WeightRange{1.0, 6.0});
    std::vector<char> side(30, 0);
    for (auto& c : side) c = rng.next_bool(0.5) ? 1 : 0;
    if (ones(side) == 0 || ones(side) == 30) continue;
    const Weight before = g.cut_weight(side);
    const Weight reported = fm_refine(g, side, 4, 0.2);
    const Weight after = g.cut_weight(side);
    EXPECT_LE(after, before + 1e-9);
    EXPECT_NEAR(reported, after, 1e-9);
  }
}

TEST(Cutters, FmRefineRespectsBalanceFloor) {
  Rng rng(7);
  Graph g = gen::erdos_renyi(24, 0.3, rng);
  gen::set_uniform_demands(g, 0.1);
  std::vector<char> side(24, 0);
  for (std::size_t i = 0; i < 12; ++i) side[i] = 1;
  fm_refine(g, side, 6, 0.25);
  double load1 = 0, total = 0;
  for (Vertex v = 0; v < 24; ++v) {
    total += g.demand(v);
    if (side[static_cast<std::size_t>(v)]) load1 += g.demand(v);
  }
  EXPECT_GE(load1, 0.25 * total - 1e-9);
  EXPECT_GE(total - load1, 0.25 * total - 1e-9);
}

TEST(Cutters, MinCutFallsBackOnEdgelessGraphs) {
  GraphBuilder b(3);
  const Graph g = b.build();
  Rng rng(8);
  const MinCutCutter mincut;
  const auto side = mincut.cut(g, rng);
  EXPECT_GT(ones(side), 0);
  EXPECT_LT(ones(side), 3);
}

}  // namespace
}  // namespace hgp
