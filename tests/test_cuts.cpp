#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/maxflow.hpp"
#include "graph/mincut.hpp"

namespace hgp {
namespace {

/// Exhaustive global min cut for verification (n ≤ 20).
Weight brute_force_min_cut(const Graph& g) {
  const Vertex n = g.vertex_count();
  Weight best = std::numeric_limits<Weight>::infinity();
  for (std::uint64_t mask = 1; mask + 1 < (std::uint64_t{1} << n); ++mask) {
    std::vector<char> side(static_cast<std::size_t>(n), 0);
    for (Vertex v = 0; v < n; ++v) side[v] = (mask >> v) & 1;
    best = std::min(best, g.cut_weight(side));
  }
  return best;
}

TEST(StoerWagner, PathGraphCutsLightestEdge) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 3.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 3, 2.0);
  const auto result = global_min_cut(b.build());
  EXPECT_DOUBLE_EQ(result.weight, 1.0);
}

TEST(StoerWagner, CutSideIsConsistent) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 3.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 3, 2.0);
  const Graph g = b.build();
  const auto result = global_min_cut(g);
  EXPECT_DOUBLE_EQ(g.cut_weight(result.side), result.weight);
}

TEST(StoerWagner, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    Graph g = gen::erdos_renyi(9, 0.5, rng, gen::WeightRange{1.0, 10.0});
    if (!g.is_connected()) continue;
    const auto result = global_min_cut(g);
    EXPECT_NEAR(result.weight, brute_force_min_cut(g), 1e-9)
        << "seed " << seed;
    EXPECT_NEAR(g.cut_weight(result.side), result.weight, 1e-9);
  }
}

TEST(StoerWagner, RejectsDisconnectedOrTrivialInput) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1.0);
  EXPECT_THROW(global_min_cut(b.build()), CheckError);
  GraphBuilder one(1);
  EXPECT_THROW(global_min_cut(one.build()), CheckError);
}

TEST(Dinic, SimpleSeriesParallel) {
  // s=0, t=3; two disjoint paths with bottlenecks 2 and 3.
  Dinic d(4);
  d.add_arc(0, 1, 2.0);
  d.add_arc(1, 3, 5.0);
  d.add_arc(0, 2, 4.0);
  d.add_arc(2, 3, 3.0);
  const auto r = d.solve(0, 3);
  EXPECT_DOUBLE_EQ(r.value, 5.0);
}

TEST(Dinic, SourceSideIsAMinCut) {
  Rng rng(42);
  Graph g = gen::erdos_renyi(12, 0.4, rng, gen::WeightRange{1.0, 7.0});
  if (!g.is_connected()) GTEST_SKIP();
  const auto r = Dinic::min_st_cut(g, 0, 11);
  EXPECT_TRUE(r.source_side[0]);
  EXPECT_FALSE(r.source_side[11]);
  EXPECT_NEAR(g.cut_weight(r.source_side), r.value, 1e-9);
}

TEST(Dinic, MaxFlowEqualsMinimumOverStPairsOfGlobalCut) {
  // Global min cut = min over t of max-flow(s, t) for any fixed s.
  Rng rng(19);
  Graph g = gen::erdos_renyi(10, 0.5, rng, gen::WeightRange{1.0, 6.0});
  if (!g.is_connected()) GTEST_SKIP();
  Weight best = std::numeric_limits<Weight>::infinity();
  for (Vertex t = 1; t < g.vertex_count(); ++t) {
    best = std::min(best, Dinic::min_st_cut(g, 0, t).value);
  }
  EXPECT_NEAR(best, global_min_cut(g).weight, 1e-9);
}

TEST(Dinic, DisconnectedPairHasZeroFlow) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 5.0);
  b.add_edge(2, 3, 5.0);
  const auto r = Dinic::min_st_cut(b.build(), 0, 3);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
}

TEST(Dinic, InvalidEndpointsThrow) {
  Dinic d(2);
  d.add_undirected_edge(0, 1, 1.0);
  EXPECT_THROW(d.solve(0, 0), CheckError);
}

}  // namespace
}  // namespace hgp
