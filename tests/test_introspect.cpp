// Introspection endpoint and flight recorder tests: unix-socket scrape
// server behavior (handlers, built-ins, error paths), flight-recorder
// dump shape on every trigger path (stream, file, signal-safe writer,
// crash-dump hook), and the SolverService integration that exposes
// /requests (src/obs/introspect.hpp, src/obs/flight_recorder.hpp,
// docs/OBSERVABILITY.md).
//
// The server and recorder build in both HGP_OBS modes; only tests that
// need the *service* to start the endpoint (an HGP_OBS_ENABLED-gated
// wiring) or the macros to journal are gated.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "graph/generators.hpp"
#include "hierarchy/placement.hpp"
#include "obs/event_journal.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/introspect.hpp"
#include "obs/metrics.hpp"
#include "runtime/service.hpp"
#include "util/crash_dump.hpp"
#include "util/prng.hpp"

namespace hgp {
namespace {

using obs::EventJournal;
using obs::EventKind;
using obs::FlightRecorder;
using obs::IntrospectionServer;
using obs::IntrospectOptions;
using obs::introspect_fetch;

/// Unique short socket path (sockaddr_un caps paths near 100 bytes, so
/// /tmp, not the build tree).
std::string test_socket_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          ("hgp-it-" + std::to_string(::getpid()) + "-" + tag + ".sock"))
      .string();
}

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

Graph workload(std::uint64_t seed) {
  Rng rng(seed);
  Graph g = gen::planted_partition(24, 4, 0.75, 0.05, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / 24.0);
  return g;
}

const Hierarchy& hier() {
  static const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  return h;
}

// ---------------------------------------------------------------------------
// IntrospectionServer: scrape round trips

TEST(Introspect, ServesRegisteredHandler) {
  IntrospectOptions opt;
  opt.socket_path = test_socket_path("handler");
  IntrospectionServer server(opt);
  server.register_handler("/hello", [](std::ostream& os) { os << "world"; });

  std::string body;
  const Status s = introspect_fetch(opt.socket_path, "/hello", &body);
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_EQ(body, "world");
}

TEST(Introspect, ReRegisteringAPathReplacesTheHandler) {
  IntrospectOptions opt;
  opt.socket_path = test_socket_path("replace");
  IntrospectionServer server(opt);
  server.register_handler("/v", [](std::ostream& os) { os << "one"; });
  server.register_handler("/v", [](std::ostream& os) { os << "two"; });

  std::string body;
  ASSERT_TRUE(introspect_fetch(opt.socket_path, "/v", &body).ok());
  EXPECT_EQ(body, "two");
}

TEST(Introspect, BuiltinMetricsEndpointSpeaksPrometheus) {
  obs::MetricsRegistry::global().counter("introspect.test_scrapes").add(3);
  IntrospectOptions opt;
  opt.socket_path = test_socket_path("metrics");
  IntrospectionServer server(opt);

  std::string body;
  const Status s = introspect_fetch(opt.socket_path, "/metrics", &body);
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_NE(body.find("# TYPE hgp_introspect_test_scrapes counter"),
            std::string::npos);
  EXPECT_NE(body.find("hgp_introspect_test_scrapes 3"), std::string::npos);
}

TEST(Introspect, BuiltinFlightRecorderEndpointReturnsDump) {
  IntrospectOptions opt;
  opt.socket_path = test_socket_path("fr");
  IntrospectionServer server(opt);

  std::string body;
  const Status s = introspect_fetch(opt.socket_path, "/flightrecorder", &body);
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_NE(body.find("\"reason\": \"on-demand scrape\""), std::string::npos);
  EXPECT_NE(body.find("\"events\": ["), std::string::npos);
  EXPECT_NE(body.find("\"metrics\": "), std::string::npos);
}

TEST(Introspect, UnknownPathIsAnError) {
  IntrospectOptions opt;
  opt.socket_path = test_socket_path("404");
  IntrospectionServer server(opt);

  std::string body;
  const Status s = introspect_fetch(opt.socket_path, "/no-such", &body);
  EXPECT_FALSE(s.ok());
}

TEST(Introspect, FetchFailsCleanlyWithoutAServer) {
  std::string body;
  const Status s = introspect_fetch(test_socket_path("absent"), "/metrics",
                                    &body);
  EXPECT_FALSE(s.ok());
}

TEST(Introspect, UnbindablePathThrowsInternal) {
  IntrospectOptions opt;
  // sockaddr_un cannot hold this, so construction must fail loudly
  // (callers that treat the endpoint as optional catch and log).
  opt.socket_path = "/tmp/" + std::string(300, 'x') + ".sock";
  try {
    IntrospectionServer server(opt);
    FAIL() << "bind should have failed";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status().code, StatusCode::kInternal);
  }
}

TEST(Introspect, StaleSocketFileIsReclaimed) {
  const std::string path = test_socket_path("stale");
  // A dead server's leftover socket file would make a naive bind fail
  // with EADDRINUSE forever; the server must unlink-then-bind.
  { std::ofstream stale(path); stale << "stale"; }
  ASSERT_TRUE(std::filesystem::exists(path));
  IntrospectionServer server(IntrospectOptions{path, 50});
  std::string body;
  EXPECT_TRUE(introspect_fetch(path, "/metrics", &body).ok());
}

// ---------------------------------------------------------------------------
// FlightRecorder: dump paths

TEST(FlightRecorder, WriteJsonCarriesJournalAndMetrics) {
  EventJournal::global().clear();
  EventJournal::global().record(EventKind::kSubmit, 21, 0, 0, 0);
  EventJournal::global().record(
      EventKind::kWatchdogCancel, 21, 2, 0,
      static_cast<std::uint8_t>(StatusCode::kCancelled));

  std::ostringstream os;
  FlightRecorder::global().write_json(os, "test \"hostile\"\nreason");
  const std::string dump = os.str();
  EXPECT_NE(dump.find("\"reason\": \"test \\\"hostile\\\"\\nreason\""),
            std::string::npos);
  EXPECT_NE(dump.find("\"kind\": \"submit\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\": \"watchdog_cancel\""), std::string::npos);
  EXPECT_NE(dump.find("\"status\": \"CANCELLED\""), std::string::npos);
  EXPECT_NE(dump.find("\"request\": 21"), std::string::npos);
  EXPECT_NE(dump.find("\"metrics\": "), std::string::npos);
  EventJournal::global().clear();
}

TEST(FlightRecorder, DumpToFileWritesAndReportsFailures) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("hgp-it-dump-" + std::to_string(::getpid()) + ".json"))
          .string();
  const Status ok = FlightRecorder::global().dump_to_file(path, "unit test");
  ASSERT_TRUE(ok.ok()) << ok.to_string();
  const std::string dump = read_file(path);
  EXPECT_NE(dump.find("\"reason\": \"unit test\""), std::string::npos);
  EXPECT_NE(dump.find("\"events\": ["), std::string::npos);
  std::filesystem::remove(path);

  const Status bad = FlightRecorder::global().dump_to_file(
      "/nonexistent-dir-hgp/x.json", "unit test");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.code, StatusCode::kDataLoss);
}

TEST(FlightRecorder, SignalSafeWriterProducesEventsOnAPlainFd) {
  EventJournal::global().clear();
  for (int i = 0; i < 5; ++i) {
    EventJournal::global().record(EventKind::kBackoff, 4, 1, i, 0);
  }
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("hgp-it-sig-" + std::to_string(::getpid()) + ".json"))
          .string();
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0600);
  ASSERT_GE(fd, 0);
  FlightRecorder::write_signal_safe(fd);
  ::close(fd);
  const std::string dump = read_file(path);
  // The signal path omits metrics (registry lock) but keeps the events.
  EXPECT_NE(dump.find("\"reason\": \"fatal_signal\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\": \"backoff\""), std::string::npos);
  EXPECT_NE(dump.find("\"request\": 4"), std::string::npos);
  EXPECT_EQ(dump.find("\"metrics\""), std::string::npos);
  std::filesystem::remove(path);
  EventJournal::global().clear();
}

TEST(FlightRecorder, CrashDumpHookRunsTheSignalWriter) {
  EventJournal::global().clear();
  EventJournal::global().record(EventKind::kRetry, 8, 1, 1, 0);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("hgp-it-crash-" + std::to_string(::getpid()) + ".json"))
          .string();
  FlightRecorder::install_signal_dump(path);
  ASSERT_TRUE(crash_dump_now());
  const std::string dump = read_file(path);
  EXPECT_NE(dump.find("\"kind\": \"retry\""), std::string::npos);
  // Disarm so later crashes in this process don't write a stale path.
  install_crash_dump(nullptr, nullptr);
  EXPECT_FALSE(crash_dump_now());
  std::filesystem::remove(path);
  EventJournal::global().clear();
}

// ---------------------------------------------------------------------------
// SolverService integration: the /requests endpoint

#if HGP_OBS_ENABLED
TEST(Introspect, ServiceExposesRequestsEndpoint) {
  const Graph g = workload(3);
  ServiceOptions sopt;
  sopt.workers = 1;
  sopt.obs_socket = test_socket_path("svc");
  SolverService service(sopt);

  std::string body;
  Status s = introspect_fetch(sopt.obs_socket, "/requests", &body);
  ASSERT_TRUE(s.ok()) << s.to_string();
  EXPECT_NE(body.find("\"queue_depth\":"), std::string::npos);
  EXPECT_NE(body.find("\"budget_utilization\":"), std::string::npos);
  EXPECT_NE(body.find("\"requests\":["), std::string::npos);

  // A live request shows up with an id row; scrape while it runs.
  SolverOptions opt;
  opt.num_trees = 2;
  auto req = service.submit(g, hier(), opt);
  std::string during;
  ASSERT_TRUE(
      introspect_fetch(sopt.obs_socket, "/requests", &during).ok());
  EXPECT_TRUE(req->wait().ok());

  // After completion the request leaves the live view again.  wait()
  // returns before the worker unlinks the entry from the in-flight list,
  // so poll the scrape briefly instead of asserting one snapshot.
  const std::string row = "{\"id\":" + std::to_string(req->id()) + ",";
  std::string after;
  for (int spin = 0; spin < 200; ++spin) {
    ASSERT_TRUE(introspect_fetch(sopt.obs_socket, "/requests", &after).ok());
    if (after.find(row) == std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(after.find(row), std::string::npos);

  // The journal recorded the request's lifecycle under its service id.
  bool saw_submit = false;
  for (const obs::JournalEvent& e : EventJournal::global().snapshot()) {
    saw_submit = saw_submit || (e.kind == EventKind::kSubmit &&
                                e.request_id == req->id());
  }
  EXPECT_TRUE(saw_submit);
}

TEST(Introspect, ServiceSurvivesUnbindableSocket) {
  // The endpoint is optional plumbing: a service whose socket cannot be
  // bound must still solve (it logs and runs without the endpoint).
  const Graph g = workload(5);
  ServiceOptions sopt;
  sopt.workers = 1;
  sopt.obs_socket = "/tmp/" + std::string(300, 'y') + ".sock";
  SolverService service(sopt);
  auto req = service.submit(g, hier());
  EXPECT_TRUE(req->wait().ok());
}
#endif  // HGP_OBS_ENABLED

}  // namespace
}  // namespace hgp
