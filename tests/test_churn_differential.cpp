// Differential churn suite: the incremental re-solve path must be
// BIT-IDENTICAL to a from-scratch solve of the same mutated instance.
//
// Every seed derives a stream-DAG instance plus a seeded churn schedule
// (tests/churn_schedule.hpp), applies the schedule through an
// IncrementalSolver (patched forest + clean-subtree DP reuse), and then
// solves the SAME patched forest from scratch with reuse disabled.  The
// two arms must agree exactly: same cost bits, same placement, same
// per-tree feasible-state counts — reuse may only change how tables are
// obtained, never their content.  The merge counters are where the arms
// are allowed to differ, and must differ in the right direction: the
// incremental arm re-merges only dirty subtrees.  Any mismatch prints the
// seed so the instance and its schedule replay in isolation, mirroring
// tests/test_dp_differential.cpp.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "churn_schedule.hpp"
#include "graph/fingerprint.hpp"
#include "hierarchy/placement.hpp"
#include "runtime/incremental.hpp"
#include "util/status.hpp"

namespace hgp {
namespace {

using testchurn::ChurnInstance;
using testchurn::make_churn_instance;

ForestSolveOptions scratch_options(const IncrementalSolver& solver) {
  ForestSolveOptions fo;
  fo.epsilon = 0.25;
  fo.units_override = solver.units();
  return fo;
}

TEST(ChurnDifferential, TwoHundredSeedsBitIdenticalToScratch) {
  int resolved = 0;
  int structural = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const ChurnInstance inst = make_churn_instance(seed);
    SCOPED_TRACE(::testing::Message()
                 << "seed=" << seed << " n=" << inst.graph->vertex_count()
                 << " h=" << inst.hierarchy.height()
                 << " units=" << inst.opt.units_override
                 << " trees=" << inst.opt.num_trees
                 << " ops=" << inst.churn.ops);

    IncrementalSolver solver(inst.graph, inst.hierarchy, inst.opt);
    const std::shared_ptr<MutationLog> log = solver.begin_batch();
    testchurn::apply_schedule(*log, inst);
    if (log->empty()) continue;

    ResolveStats rs;
    HgpResult inc;
    try {
      inc = solver.resolve(*log, ResolveOptions{}, &rs);
    } catch (const SolveError& e) {
      // Only infeasibility is an acceptable way out, and the scratch arm
      // must then agree (the sizing makes this rare; a disagreement or any
      // other error is a bug).
      ASSERT_EQ(e.status().code, StatusCode::kInfeasible) << e.what();
      const MutationLog::Materialized mat = log->materialize();
      const ForestPatch patch = patch_forest(solver.forest(), *log, mat);
      EXPECT_THROW(solve_on_forest(mat.graph, inst.hierarchy, patch.forest,
                                   scratch_options(solver)),
                   SolveError);
      continue;
    }
    ++resolved;
    if (rs.patch.added_leaves > 0 || rs.patch.removed_leaves > 0) {
      ++structural;
    }

    // From-scratch arm: full DP on the SAME patched forest (committed by
    // the successful resolve), reuse disabled.
    const Graph& g = *solver.graph();
    const HgpResult scratch = solve_on_forest(
        g, inst.hierarchy, solver.forest(), scratch_options(solver));

    // Bit-identical outcome: cost, winning tree, placement.
    ASSERT_EQ(inc.cost, scratch.cost);
    ASSERT_EQ(inc.best_tree, scratch.best_tree);
    ASSERT_EQ(inc.placement.leaf_of, scratch.placement.leaf_of);
    ASSERT_EQ(inc.tree_costs.size(), scratch.tree_costs.size());
    for (std::size_t i = 0; i < inc.tree_costs.size(); ++i) {
      ASSERT_EQ(inc.tree_costs[i], scratch.tree_costs[i]);
    }
    validate_placement(g, inst.hierarchy, inc.placement);

    // Identical DP tables: rehydration may never create or lose states.
    ASSERT_EQ(inc.telemetry.dp_feasible_states,
              scratch.telemetry.dp_feasible_states);

    // The arms split the same node set differently: scratch builds every
    // node, incremental builds dirty ones and rehydrates the rest.
    ASSERT_EQ(scratch.telemetry.dp_nodes_reused, 0u);
    ASSERT_EQ(inc.telemetry.dp_nodes_built + inc.telemetry.dp_nodes_reused,
              scratch.telemetry.dp_nodes_built);

    // Merge work only ever shrinks: clean subtrees skip their merge loops.
    ASSERT_LE(inc.telemetry.dp_merge_operations,
              scratch.telemetry.dp_merge_operations);

    // Stability metric bookkeeping is exact.
    ASSERT_LE(rs.moved_vertices, rs.surviving_vertices);
    ASSERT_LE(rs.surviving_vertices, inst.graph->vertex_count());
  }
  // The sweep must keep exercising both regimes; if the generator drifts,
  // fail loudly instead of silently weakening the suite.
  EXPECT_GE(resolved, 150);
  EXPECT_GE(structural, 40);
}

TEST(ChurnDifferential, SmallChurnReusesAtLeastFiveFoldMerges) {
  // Acceptance floor: a drift-dominant churn run touching ≤ 10% of the
  // vertices must cost ≥ 5x fewer merge relaxations than re-solving every
  // batch from scratch.  Two effects compound: demand drift that rounds to
  // the same units leaves the whole forest content-hash clean (zero
  // merges), and a volume reweight re-merges only its two leaf→LCA paths.
  // (Single-batch ratios sit around 3-6x because the rebuilt root path
  // carries the biggest merge loops; the run-level ratio is the metric the
  // E12 bench reports and is comfortably ≥ 10x — 5 here is the floor.)
  Rng rng(977);
  gen::StreamDagOptions sopt;
  sopt.sources = 6;
  sopt.sinks = 3;
  sopt.stages = 8;
  sopt.stage_width = 24;
  sopt.demand_lo = 0.01;
  sopt.demand_hi = 0.05;
  auto g = std::make_shared<const Graph>(gen::stream_dag(sopt, rng));

  IncrementalOptions iopt;
  iopt.num_trees = 2;
  iopt.units_override = 3;
  iopt.seed = 11;
  const Hierarchy h = Hierarchy::uniform(1, 24, {2.0, 0.0});
  IncrementalSolver solver(g, h, iopt);

  std::uint64_t inc_merges = 0;
  std::uint64_t scratch_merges = 0;
  std::uint64_t built = 0;
  std::uint64_t reused = 0;
  std::size_t touched_total = 0;
  for (int batch = 0; batch < 8; ++batch) {
    SCOPED_TRACE(::testing::Message() << "batch=" << batch);
    gen::ChurnOptions copt;
    copt.ops = 2;
    copt.w_add_vertex = 0;
    copt.w_remove_vertex = 0;
    copt.w_add_edge = 0;
    copt.w_remove_edge = 0;
    copt.w_reweight_edge = 1;
    copt.w_set_demand = 6;
    copt.demand_lo = 0.01;
    copt.demand_hi = 0.05;
    const std::shared_ptr<MutationLog> log = solver.begin_batch();
    Rng crng(SplitMix64(1000 + static_cast<std::uint64_t>(batch)).next());
    gen::churn(*log, copt, crng);
    ASSERT_FALSE(log->empty());
    touched_total += log->touched().size();

    ResolveStats rs;
    const HgpResult inc = solver.resolve(*log, ResolveOptions{}, &rs);
    const HgpResult scratch = solve_on_forest(
        *solver.graph(), h, solver.forest(), scratch_options(solver));
    ASSERT_EQ(inc.cost, scratch.cost);
    ASSERT_EQ(inc.placement.leaf_of, scratch.placement.leaf_of);
    inc_merges += inc.telemetry.dp_merge_operations;
    scratch_merges += scratch.telemetry.dp_merge_operations;
    built += rs.nodes_built;
    reused += rs.nodes_reused;
  }
  ASSERT_LE(touched_total, static_cast<std::size_t>(g->vertex_count() / 10));
  EXPECT_GT(reused, built);
  ASSERT_GT(scratch_merges, 0u);
  ASSERT_GT(inc_merges, 0u);  // the run did hit the rebuild path
  EXPECT_GE(scratch_merges, 5 * inc_merges)
      << "scratch=" << scratch_merges << " incremental=" << inc_merges;
}

TEST(ChurnDifferential, ChainedResolvesStayIdenticalToScratch) {
  // Five successive batches against one solver: every commit becomes the
  // next batch's base, and each step must still match scratch exactly.
  const ChurnInstance inst = make_churn_instance(7);
  IncrementalSolver solver(inst.graph, inst.hierarchy, inst.opt);
  for (std::uint64_t step = 0; step < 5; ++step) {
    SCOPED_TRACE(::testing::Message() << "step=" << step);
    const std::shared_ptr<MutationLog> log = solver.begin_batch();
    Rng rng(SplitMix64(inst.churn_seed + step).next());
    gen::ChurnOptions copt = inst.churn;
    copt.ops = 6;
    gen::churn(*log, copt, rng);
    if (log->empty()) continue;
    const HgpResult inc = solver.resolve(*log);
    const HgpResult scratch = solve_on_forest(
        *solver.graph(), inst.hierarchy, solver.forest(),
        scratch_options(solver));
    ASSERT_EQ(inc.cost, scratch.cost);
    ASSERT_EQ(inc.placement.leaf_of, scratch.placement.leaf_of);
    ASSERT_EQ(inc.telemetry.dp_feasible_states,
              scratch.telemetry.dp_feasible_states);
    ASSERT_EQ(solver.fingerprint(), graph_fingerprint(*solver.graph()));
  }
}

TEST(ChurnDifferential, StaleLogIsRejectedWithoutStateDamage) {
  const ChurnInstance inst = make_churn_instance(3);
  IncrementalSolver solver(inst.graph, inst.hierarchy, inst.opt);
  const std::shared_ptr<MutationLog> log = solver.begin_batch();
  testchurn::apply_schedule(*log, inst);
  ASSERT_FALSE(log->empty());
  const HgpResult first = solver.resolve(*log);

  // The same log is now stale: its base is the pre-commit snapshot.
  try {
    solver.resolve(*log);
    FAIL() << "stale log must be rejected";
  } catch (const SolveError& e) {
    EXPECT_EQ(e.status().code, StatusCode::kInvalidInput);
  }
  // Committed state undamaged: a fresh batch still resolves.
  EXPECT_EQ(solver.last().cost, first.cost);
  const std::shared_ptr<MutationLog> fresh = solver.begin_batch();
  fresh->set_demand(0, 0.2);
  EXPECT_NO_THROW(solver.resolve(*fresh));
}

TEST(ChurnDifferential, ReusePinsPruneFlagCompatibility) {
  // A resolve that flips force_prune must still be exact — the store is
  // ignored (prune flag mismatch) and every node rebuilt, never mixed.
  const ChurnInstance inst = make_churn_instance(12);
  IncrementalSolver solver(inst.graph, inst.hierarchy, inst.opt);
  const std::shared_ptr<MutationLog> log = solver.begin_batch();
  testchurn::apply_schedule(*log, inst);
  if (log->empty()) GTEST_SKIP();
  ResolveOptions ro;
  ro.force_prune = true;
  const HgpResult inc = solver.resolve(*log, ro);
  ForestSolveOptions fo = scratch_options(solver);
  fo.force_prune = true;
  const HgpResult scratch =
      solve_on_forest(*solver.graph(), inst.hierarchy, solver.forest(), fo);
  ASSERT_EQ(inc.cost, scratch.cost);
  ASSERT_EQ(inc.placement.leaf_of, scratch.placement.leaf_of);
}

}  // namespace
}  // namespace hgp
