// Telemetry layer tests: span nesting and thread attribution, metric
// correctness under concurrent updates (run these under the `tsan` preset
// too), Chrome-trace export shape, and the HGP_OBS compile-out contract.
//
// The whole file compiles in both HGP_OBS modes: sections that observe the
// *effects* of the instrumentation macros are gated on HGP_OBS_ENABLED,
// everything else (classes, exporters, SolveTelemetry) must work either
// way because the hgp_obs library always builds.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/solver.hpp"
#include "util/thread_id.hpp"

namespace hgp {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::TraceBuffer;
using obs::TraceEvent;
using obs::TraceSpan;

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// TraceBuffer / TraceSpan

TEST(Trace, DisabledBufferRecordsNothing) {
  TraceBuffer buf;  // disabled by default
  {
    TraceSpan s("ignored", obs::kNoArg, &buf);
  }
  EXPECT_EQ(buf.size(), 0u);
}

TEST(Trace, NestedSpansRecordDepthAndOrdering) {
  TraceBuffer buf;
  buf.set_enabled(true);
  {
    TraceSpan outer("outer", obs::kNoArg, &buf);
    {
      TraceSpan mid("mid", 7, &buf);
      TraceSpan inner("inner", obs::kNoArg, &buf);
    }
  }
  const std::vector<TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // snapshot() orders outer spans before the spans they contain.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_STREQ(events[1].name, "mid");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[1].arg, 7);
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[2].depth, 2u);
  // Containment: every child's interval lies inside its parent's.
  EXPECT_GE(events[1].start_us, events[0].start_us);
  EXPECT_LE(events[1].start_us + events[1].dur_us,
            events[0].start_us + events[0].dur_us);
  // All on this thread.
  EXPECT_EQ(events[0].tid, this_thread_id());
  EXPECT_EQ(events[1].tid, events[0].tid);
}

TEST(Trace, SpansAcrossThreadPoolWorkersKeepPerThreadNesting) {
  TraceBuffer buf;
  buf.set_enabled(true);
  constexpr int kWorkers = 4;
  {
    ThreadPool pool(kWorkers);
    // A rendezvous pins one task per worker, so the spans are guaranteed to
    // come from kWorkers distinct threads recording concurrently.
    std::atomic<int> arrived{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < kWorkers; ++i) {
      futures.push_back(pool.submit([&, i] {
        TraceSpan task("worker.task", i, &buf);
        arrived.fetch_add(1);
        while (arrived.load() < kWorkers) std::this_thread::yield();
        TraceSpan nested("worker.nested", obs::kNoArg, &buf);
      }));
    }
    for (auto& f : futures) f.get();
  }
  const std::vector<TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 2u * kWorkers);
  std::set<std::uint32_t> tids;
  std::set<std::int64_t> args;
  for (const TraceEvent& e : events) {
    tids.insert(e.tid);
    if (e.arg != obs::kNoArg) args.insert(e.arg);
    // Depth is per-thread: a task span sits at 0, its nested span at 1,
    // regardless of what other workers are doing concurrently.
    if (std::string(e.name) == "worker.task") {
      EXPECT_EQ(e.depth, 0u);
    } else {
      EXPECT_EQ(e.depth, 1u);
    }
  }
  EXPECT_EQ(args.size(), static_cast<std::size_t>(kWorkers));
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kWorkers));
}

TEST(Trace, ClearDropsEventsAndKeepsRecording) {
  TraceBuffer buf;
  buf.set_enabled(true);
  { TraceSpan s("a", obs::kNoArg, &buf); }
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  { TraceSpan s("b", obs::kNoArg, &buf); }
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Trace, ChromeJsonIsWellFormed) {
  TraceBuffer buf;
  buf.set_enabled(true);
  {
    TraceSpan outer("solve", 128, &buf);
    TraceSpan inner("dp.solve", obs::kNoArg, &buf);
  }
  std::ostringstream os;
  buf.write_chrome_json(os);
  const std::string json = os.str();
  // Structural checks; CI additionally runs `python3 -m json.tool` on the
  // CLI's --trace output (telemetry smoke job).
  EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"solve\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"dp.solve\""), 1u);
  // The span arg is exported for "solve" and omitted for the arg-less one.
  EXPECT_EQ(count_occurrences(json, "\"arg\":128"), 1u);
  EXPECT_EQ(count_occurrences(json, "\"arg\":"), 1u);
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  ASSERT_GE(json.size(), 2u);
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline after the root
}

TEST(Trace, SummaryAggregatesPerName) {
  TraceBuffer buf;
  buf.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    TraceSpan s("repeat", obs::kNoArg, &buf);
  }
  { TraceSpan s("once", obs::kNoArg, &buf); }
  const Table summary = buf.summary();
  EXPECT_EQ(summary.row_count(), 2u);
  const std::string text = summary.to_string();
  EXPECT_NE(text.find("repeat"), std::string::npos);
  EXPECT_NE(text.find("once"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(Metrics, CounterIsExactUnderConcurrentIncrements) {
  MetricsRegistry reg;
  Counter& ctr = reg.counter("test.concurrent");
  constexpr std::size_t kIters = 20000;
  {
    ThreadPool pool(8);
    parallel_for(pool, 0, kIters, [&](std::size_t) { ctr.add(1); });
  }
  EXPECT_EQ(ctr.value(), kIters);
  EXPECT_EQ(reg.counter_value("test.concurrent"), kIters);
  EXPECT_EQ(reg.counter_value("test.never_registered"), 0u);
}

TEST(Metrics, RegistryHandsOutStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("same.name");
  Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);
}

TEST(Metrics, GaugeTracksValueAndHighWaterMark) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.depth");
  g.add(+3);
  g.add(+2);
  g.add(-4);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max_value(), 5);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  EXPECT_EQ(g.max_value(), 5);  // max is sticky
}

TEST(Metrics, HistogramBucketsAndSumAreExactUnderConcurrency) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.latency", {1.0, 2.0, 4.0});
  constexpr std::size_t kIters = 4000;  // multiple of 4
  {
    ThreadPool pool(8);
    parallel_for(pool, 0, kIters, [&](std::size_t i) {
      // Cycle deterministically through the buckets: 1, 2, 4, 8(overflow).
      h.observe(static_cast<double>(std::size_t{1} << (i % 4)));
    });
  }
  EXPECT_EQ(h.count(), kIters);
  // Integer-valued observations sum exactly in doubles (≤ 15000 << 2^53).
  EXPECT_EQ(h.sum(), static_cast<double>(kIters / 4 * (1 + 2 + 4 + 8)));
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  for (std::uint64_t b : buckets) EXPECT_EQ(b, kIters / 4);
}

TEST(Metrics, ResetZeroesWithoutInvalidatingReferences) {
  MetricsRegistry reg;
  Counter& ctr = reg.counter("test.reset");
  Gauge& g = reg.gauge("test.reset_gauge");
  Histogram& h = reg.histogram("test.reset_hist", {10.0});
  ctr.add(5);
  g.set(9);
  h.observe(3.0);
  reg.reset_values();
  EXPECT_EQ(ctr.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  ctr.add(1);
  EXPECT_EQ(reg.counter_value("test.reset"), 1u);
}

TEST(Metrics, JsonExportContainsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("c.one").add(3);
  reg.gauge("g.two").set(4);
  reg.histogram("h.three", {1.0, 10.0}).observe(5.0);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c.one\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"g.two\""), std::string::npos);
  EXPECT_NE(json.find("\"h.three\""), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
}

// ---------------------------------------------------------------------------
// Macro layer and the HGP_OBS knob

TEST(ObsMacros, CompileOutContractMatchesBuildMode) {
  TraceBuffer& buf = TraceBuffer::global();
  buf.set_enabled(true);
  buf.clear();
  const std::uint64_t before =
      MetricsRegistry::global().counter_value("test.macro_counter");
  {
    HGP_TRACE_SPAN("macro.span");
    HGP_COUNTER_ADD("test.macro_counter", 2);
  }
  const std::uint64_t after =
      MetricsRegistry::global().counter_value("test.macro_counter");
  buf.set_enabled(false);
#if HGP_OBS_ENABLED
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(after - before, 2u);
#else
  // With HGP_OBS=OFF every macro collapses to a no-op: nothing recorded,
  // nothing registered, arguments not even evaluated.
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(after, 0u);
  EXPECT_EQ(before, 0u);
#endif
  buf.clear();
}

TEST(ObsMacros, DisabledGlobalBufferMakesSpansInert) {
  TraceBuffer& buf = TraceBuffer::global();
  buf.set_enabled(false);
  buf.clear();
  {
    HGP_TRACE_SPAN("macro.inert");
  }
  EXPECT_EQ(buf.size(), 0u);
}

// ---------------------------------------------------------------------------
// SolveTelemetry surface (filled with or without HGP_OBS)

TEST(Telemetry, SolveHgpFillsPhaseTimingsAndDpTotals) {
  Rng rng(11);
  Graph g = gen::planted_partition(16, 4, 0.75, 0.05, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / 16.0);
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});

  SolverOptions opt;
  opt.num_trees = 3;
  opt.seed = 5;
  const HgpResult r = solve_hgp(g, h, opt);

  const SolveTelemetry& tm = r.telemetry;
  EXPECT_EQ(tm.trees_attempted, 3);
  EXPECT_EQ(tm.trees_succeeded, 3);
  EXPECT_GT(tm.total_ms, 0.0);
  EXPECT_GE(tm.total_ms,
            tm.forest_build_ms);  // stages are contained in the total
  EXPECT_GE(tm.total_ms, tm.tree_solve_ms);
  EXPECT_EQ(tm.fallback_ms, 0.0);  // primary pipeline won
  EXPECT_GT(tm.dp_signatures, 0u);
  EXPECT_GT(tm.dp_feasible_states, 0u);
  EXPECT_GT(tm.dp_merge_operations, 0u);
  // The winner's stats are a subset of the summed telemetry.
  EXPECT_LE(r.stats.merge_operations, tm.dp_merge_operations);
}

}  // namespace
}  // namespace hgp
