// Telemetry layer tests: span nesting and thread attribution, metric
// correctness under concurrent updates (run these under the `tsan` preset
// too), Chrome-trace export shape, and the HGP_OBS compile-out contract.
//
// The whole file compiles in both HGP_OBS modes: sections that observe the
// *effects* of the instrumentation macros are gated on HGP_OBS_ENABLED,
// everything else (classes, exporters, SolveTelemetry) must work either
// way because the hgp_obs library always builds.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <future>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "obs/event_journal.hpp"
#include "obs/json_escape.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "runtime/solver.hpp"
#include "util/thread_id.hpp"

namespace hgp {
namespace {

using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::TraceBuffer;
using obs::TraceEvent;
using obs::TraceSpan;

std::size_t count_occurrences(const std::string& hay,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// TraceBuffer / TraceSpan

TEST(Trace, DisabledBufferRecordsNothing) {
  TraceBuffer buf;  // disabled by default
  {
    TraceSpan s("ignored", obs::kNoArg, &buf);
  }
  EXPECT_EQ(buf.size(), 0u);
}

TEST(Trace, NestedSpansRecordDepthAndOrdering) {
  TraceBuffer buf;
  buf.set_enabled(true);
  {
    TraceSpan outer("outer", obs::kNoArg, &buf);
    {
      TraceSpan mid("mid", 7, &buf);
      TraceSpan inner("inner", obs::kNoArg, &buf);
    }
  }
  const std::vector<TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 3u);
  // snapshot() orders outer spans before the spans they contain.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_STREQ(events[1].name, "mid");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_EQ(events[1].arg, 7);
  EXPECT_STREQ(events[2].name, "inner");
  EXPECT_EQ(events[2].depth, 2u);
  // Containment: every child's interval lies inside its parent's.
  EXPECT_GE(events[1].start_us, events[0].start_us);
  EXPECT_LE(events[1].start_us + events[1].dur_us,
            events[0].start_us + events[0].dur_us);
  // All on this thread.
  EXPECT_EQ(events[0].tid, this_thread_id());
  EXPECT_EQ(events[1].tid, events[0].tid);
}

TEST(Trace, SpansAcrossThreadPoolWorkersKeepPerThreadNesting) {
  TraceBuffer buf;
  buf.set_enabled(true);
  constexpr int kWorkers = 4;
  {
    ThreadPool pool(kWorkers);
    // A rendezvous pins one task per worker, so the spans are guaranteed to
    // come from kWorkers distinct threads recording concurrently.
    std::atomic<int> arrived{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < kWorkers; ++i) {
      futures.push_back(pool.submit([&, i] {
        TraceSpan task("worker.task", i, &buf);
        arrived.fetch_add(1);
        while (arrived.load() < kWorkers) std::this_thread::yield();
        TraceSpan nested("worker.nested", obs::kNoArg, &buf);
      }));
    }
    for (auto& f : futures) f.get();
  }
  const std::vector<TraceEvent> events = buf.snapshot();
  ASSERT_EQ(events.size(), 2u * kWorkers);
  std::set<std::uint32_t> tids;
  std::set<std::int64_t> args;
  for (const TraceEvent& e : events) {
    tids.insert(e.tid);
    if (e.arg != obs::kNoArg) args.insert(e.arg);
    // Depth is per-thread: a task span sits at 0, its nested span at 1,
    // regardless of what other workers are doing concurrently.
    if (std::string(e.name) == "worker.task") {
      EXPECT_EQ(e.depth, 0u);
    } else {
      EXPECT_EQ(e.depth, 1u);
    }
  }
  EXPECT_EQ(args.size(), static_cast<std::size_t>(kWorkers));
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kWorkers));
}

TEST(Trace, ClearDropsEventsAndKeepsRecording) {
  TraceBuffer buf;
  buf.set_enabled(true);
  { TraceSpan s("a", obs::kNoArg, &buf); }
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  { TraceSpan s("b", obs::kNoArg, &buf); }
  EXPECT_EQ(buf.size(), 1u);
}

TEST(Trace, ChromeJsonIsWellFormed) {
  TraceBuffer buf;
  buf.set_enabled(true);
  {
    TraceSpan outer("solve", 128, &buf);
    TraceSpan inner("dp.solve", obs::kNoArg, &buf);
  }
  std::ostringstream os;
  buf.write_chrome_json(os);
  const std::string json = os.str();
  // Structural checks; CI additionally runs `python3 -m json.tool` on the
  // CLI's --trace output (telemetry smoke job).
  EXPECT_EQ(json.rfind("{\"traceEvents\":", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"solve\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"name\":\"dp.solve\""), 1u);
  // The span arg is exported for "solve" and omitted for the arg-less one.
  EXPECT_EQ(count_occurrences(json, "\"arg\":128"), 1u);
  EXPECT_EQ(count_occurrences(json, "\"arg\":"), 1u);
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  ASSERT_GE(json.size(), 2u);
  EXPECT_EQ(json[json.size() - 2], '}');  // trailing newline after the root
}

TEST(Trace, SummaryAggregatesPerName) {
  TraceBuffer buf;
  buf.set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    TraceSpan s("repeat", obs::kNoArg, &buf);
  }
  { TraceSpan s("once", obs::kNoArg, &buf); }
  const Table summary = buf.summary();
  EXPECT_EQ(summary.row_count(), 2u);
  const std::string text = summary.to_string();
  EXPECT_NE(text.find("repeat"), std::string::npos);
  EXPECT_NE(text.find("once"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics

TEST(Metrics, CounterIsExactUnderConcurrentIncrements) {
  MetricsRegistry reg;
  Counter& ctr = reg.counter("test.concurrent");
  constexpr std::size_t kIters = 20000;
  {
    ThreadPool pool(8);
    parallel_for(pool, 0, kIters, [&](std::size_t) { ctr.add(1); });
  }
  EXPECT_EQ(ctr.value(), kIters);
  EXPECT_EQ(reg.counter_value("test.concurrent"), kIters);
  EXPECT_EQ(reg.counter_value("test.never_registered"), 0u);
}

TEST(Metrics, RegistryHandsOutStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("same.name");
  Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);
  a.add(2);
  EXPECT_EQ(b.value(), 2u);
}

TEST(Metrics, GaugeTracksValueAndHighWaterMark) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.depth");
  g.add(+3);
  g.add(+2);
  g.add(-4);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max_value(), 5);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
  EXPECT_EQ(g.max_value(), 5);  // max is sticky
}

TEST(Metrics, HistogramBucketsAndSumAreExactUnderConcurrency) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.latency", {1.0, 2.0, 4.0});
  constexpr std::size_t kIters = 4000;  // multiple of 4
  {
    ThreadPool pool(8);
    parallel_for(pool, 0, kIters, [&](std::size_t i) {
      // Cycle deterministically through the buckets: 1, 2, 4, 8(overflow).
      h.observe(static_cast<double>(std::size_t{1} << (i % 4)));
    });
  }
  EXPECT_EQ(h.count(), kIters);
  // Integer-valued observations sum exactly in doubles (≤ 15000 << 2^53).
  EXPECT_EQ(h.sum(), static_cast<double>(kIters / 4 * (1 + 2 + 4 + 8)));
  const std::vector<std::uint64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  for (std::uint64_t b : buckets) EXPECT_EQ(b, kIters / 4);
}

TEST(Metrics, ResetZeroesWithoutInvalidatingReferences) {
  MetricsRegistry reg;
  Counter& ctr = reg.counter("test.reset");
  Gauge& g = reg.gauge("test.reset_gauge");
  Histogram& h = reg.histogram("test.reset_hist", {10.0});
  ctr.add(5);
  g.set(9);
  h.observe(3.0);
  reg.reset_values();
  EXPECT_EQ(ctr.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  ctr.add(1);
  EXPECT_EQ(reg.counter_value("test.reset"), 1u);
}

TEST(Metrics, JsonExportContainsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("c.one").add(3);
  reg.gauge("g.two").set(4);
  reg.histogram("h.three", {1.0, 10.0}).observe(5.0);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c.one\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"g.two\""), std::string::npos);
  EXPECT_NE(json.find("\"h.three\""), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
}

// ---------------------------------------------------------------------------
// JSON escaping (shared by the trace/metrics/flight-recorder exporters)

TEST(JsonEscape, HostileNamesRoundTripSafely) {
  // Quotes, backslashes, control characters and embedded newlines are the
  // payloads that break naive exporters; metric/span names are caller
  // strings, so the escaper must neutralize all of them.
  EXPECT_EQ(obs::json_escaped("plain.name"), "plain.name");
  EXPECT_EQ(obs::json_escaped("quote\"inside"), "quote\\\"inside");
  EXPECT_EQ(obs::json_escaped("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::json_escaped("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(obs::json_escaped("cr\rtab\t"), "cr\\rtab\\t");
  EXPECT_EQ(obs::json_escaped(std::string("nul\0byte", 8)),
            "nul\\u0000byte");
  EXPECT_EQ(obs::json_escaped("\x01\x1f"), "\\u0001\\u001f");
  EXPECT_EQ(obs::json_escaped("bell\bform\f"), "bell\\bform\\f");
  // UTF-8 multibyte sequences pass through untouched (bytes >= 0x20).
  EXPECT_EQ(obs::json_escaped("gr\xc3\xa4ph"), "gr\xc3\xa4ph");
}

TEST(JsonEscape, StreamAndStringVariantsAgree) {
  const std::string hostile = "a\"b\\c\nd\x02";
  std::ostringstream os;
  obs::write_json_escaped(os, hostile);
  EXPECT_EQ(os.str(), obs::json_escaped(hostile));
}

TEST(JsonEscape, MetricsExportEscapesHostileNames) {
  MetricsRegistry reg;
  reg.counter("evil\"name\n").add(1);
  std::ostringstream os;
  reg.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("evil\\\"name\\n"), std::string::npos);
  EXPECT_EQ(json.find("evil\"name\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram quantiles and the Prometheus exposition

TEST(Metrics, HistogramQuantileInterpolatesWithinBuckets) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.quantile", {10.0, 20.0, 40.0});
  // 100 observations in [0, 10]: p50 lands mid-bucket by interpolation.
  for (int i = 0; i < 100; ++i) h.observe(5.0);
  const auto snaps = reg.histogram_snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  const obs::HistogramSnapshot& s = snaps[0];
  EXPECT_EQ(s.name, "test.quantile");
  EXPECT_EQ(s.count, 100u);
  // All mass in the first bucket: quantiles interpolate inside [0, 10].
  EXPECT_NEAR(obs::histogram_quantile(s, 0.5), 5.0, 1e-9);
  EXPECT_NEAR(obs::histogram_quantile(s, 1.0), 10.0, 1e-9);
  EXPECT_GT(obs::histogram_quantile(s, 0.1), 0.0);
}

TEST(Metrics, HistogramQuantileHandlesEmptyAndOverflow) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.overflow", {1.0, 2.0});
  const auto empty = reg.histogram_snapshots();
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_TRUE(std::isnan(obs::histogram_quantile(empty[0], 0.5)));
  // All mass beyond the last finite bound: the estimate reports that
  // bound (the histogram cannot see further).
  h.observe(100.0);
  h.observe(200.0);
  const auto snaps = reg.histogram_snapshots();
  EXPECT_EQ(obs::histogram_quantile(snaps[0], 0.99), 2.0);
}

TEST(Metrics, PrometheusExpositionShape) {
  MetricsRegistry reg;
  reg.counter("dp.merge_operations").add(7);
  reg.gauge("service.queue_depth").set(3);
  reg.histogram("pool.task_run_ms", {1.0, 8.0}).observe(0.5);
  std::ostringstream os;
  reg.write_prometheus(os);
  const std::string text = os.str();
  // Counter: sanitized name, TYPE line, value.
  EXPECT_NE(text.find("# TYPE hgp_dp_merge_operations counter"),
            std::string::npos);
  EXPECT_NE(text.find("hgp_dp_merge_operations 7"), std::string::npos);
  // Gauge: value plus the sticky high-water series.
  EXPECT_NE(text.find("hgp_service_queue_depth 3"), std::string::npos);
  EXPECT_NE(text.find("hgp_service_queue_depth_max 3"), std::string::npos);
  // Histogram: cumulative buckets, +Inf, sum and count.
  EXPECT_NE(text.find("hgp_pool_task_run_ms_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("hgp_pool_task_run_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("hgp_pool_task_run_ms_count 1"), std::string::npos);
  EXPECT_NE(text.find("hgp_pool_task_run_ms_sum 0.5"), std::string::npos);
  // Every line is either a comment or "name[{labels}] value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
    EXPECT_EQ(line.rfind("hgp_", 0), 0u) << line;
  }
}

// ---------------------------------------------------------------------------
// Event journal

TEST(EventJournal, RecordsAndSnapshotsTypedEvents) {
  obs::EventJournal journal;
  journal.record(obs::EventKind::kSubmit, 42, 0, 0, 0);
  journal.record(obs::EventKind::kAttemptStart, 42, 1, 8, 0);
  journal.record(obs::EventKind::kRetry, 42, 1, 1,
                 static_cast<std::uint8_t>(StatusCode::kInternal));
  const std::vector<obs::JournalEvent> events = journal.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(journal.recorded(), 3u);
  // Snapshot is time-ordered; all three came from this thread in order.
  EXPECT_EQ(events[0].kind, obs::EventKind::kSubmit);
  EXPECT_EQ(events[0].request_id, 42u);
  EXPECT_EQ(events[1].kind, obs::EventKind::kAttemptStart);
  EXPECT_EQ(events[1].arg, 8);
  EXPECT_EQ(events[1].attempt, 1u);
  EXPECT_EQ(events[2].status,
            static_cast<std::uint8_t>(StatusCode::kInternal));
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[1].ts_us, events[2].ts_us);
}

TEST(EventJournal, RingOverwriteKeepsTheTail) {
  obs::EventJournal journal;
  const std::size_t total = obs::EventJournal::kRingCapacity + 100;
  for (std::size_t i = 0; i < total; ++i) {
    journal.record(obs::EventKind::kCheckpointRecord, 1, 1,
                   static_cast<std::int64_t>(i), 0);
  }
  const std::vector<obs::JournalEvent> events = journal.snapshot();
  // One thread → one ring: exactly kRingCapacity retained, and they are
  // the *newest* events.  (Snapshot order ties on equal timestamps, so
  // compare the retained arg range, not positions.)
  ASSERT_EQ(events.size(), obs::EventJournal::kRingCapacity);
  EXPECT_EQ(journal.recorded(), total);
  std::int64_t min_arg = events.front().arg;
  std::int64_t max_arg = events.front().arg;
  for (const obs::JournalEvent& e : events) {
    min_arg = std::min(min_arg, e.arg);
    max_arg = std::max(max_arg, e.arg);
  }
  EXPECT_EQ(min_arg, static_cast<std::int64_t>(100));
  EXPECT_EQ(max_arg, static_cast<std::int64_t>(total - 1));
}

TEST(EventJournal, ClearEmptiesEveryRing) {
  obs::EventJournal journal;
  journal.record(obs::EventKind::kSubmit, 1, 0, 0, 0);
  journal.clear();
  EXPECT_TRUE(journal.snapshot().empty());
  journal.record(obs::EventKind::kAdmit, 2, 0, 0, 0);
  ASSERT_EQ(journal.snapshot().size(), 1u);
  EXPECT_EQ(journal.snapshot()[0].kind, obs::EventKind::kAdmit);
}

TEST(EventJournal, SignalSafeCopyMatchesSnapshotContent) {
  obs::EventJournal journal;
  for (int i = 0; i < 10; ++i) {
    journal.record(obs::EventKind::kBackoff, 7, 2, i, 0);
  }
  obs::JournalEvent out[16];
  const std::size_t n = journal.copy_events_signal_safe(out, 16);
  ASSERT_EQ(n, 10u);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i].kind, obs::EventKind::kBackoff);
    EXPECT_EQ(out[i].request_id, 7u);
  }
}

TEST(EventJournal, KindNamesAreStable) {
  EXPECT_STREQ(obs::event_kind_name(obs::EventKind::kSubmit), "submit");
  EXPECT_STREQ(obs::event_kind_name(obs::EventKind::kAttemptStart),
               "attempt_start");
  EXPECT_STREQ(obs::event_kind_name(obs::EventKind::kWatchdogCancel),
               "watchdog_cancel");
  EXPECT_STREQ(obs::event_kind_name(obs::EventKind::kFallbackStage),
               "fallback_stage");
  // The numeric values are a dump-format contract.
  EXPECT_EQ(static_cast<int>(obs::EventKind::kSubmit), 0);
  EXPECT_EQ(static_cast<int>(obs::EventKind::kFallbackStage), 13);
}

TEST(EventJournal, RequestScopeNestsAndRestores) {
  EXPECT_EQ(obs::RequestScope::current_request_id(), 0u);
  {
    obs::RequestScope outer(5, 1);
    EXPECT_EQ(obs::RequestScope::current_request_id(), 5u);
    EXPECT_EQ(obs::RequestScope::current_attempt(), 1u);
    {
      obs::RequestScope inner(6, 2);
      EXPECT_EQ(obs::RequestScope::current_request_id(), 6u);
    }
    EXPECT_EQ(obs::RequestScope::current_request_id(), 5u);
  }
  EXPECT_EQ(obs::RequestScope::current_request_id(), 0u);
}

TEST(EventJournal, LibraryRequestIdsAreDisjointFromServiceIds) {
  const std::uint64_t a = obs::next_library_request_id();
  const std::uint64_t b = obs::next_library_request_id();
  EXPECT_NE(a, b);
  // Service ids are dense from 0; library ids live in a disjoint range.
  EXPECT_GE(a, std::uint64_t{1} << 32);
}

#if HGP_OBS_ENABLED
TEST(EventJournal, JournalMacrosRecordIntoTheGlobalJournal) {
  obs::EventJournal::global().clear();
  HGP_JOURNAL(kSubmit, 9, 0, 0, 0);
  {
    HGP_REQUEST_SCOPE(9, 3);
    HGP_JOURNAL_SCOPED(kFallbackStage, obs::kFallbackStageGreedy, 0);
  }
  const auto events = obs::EventJournal::global().snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, obs::EventKind::kSubmit);
  EXPECT_EQ(events[1].kind, obs::EventKind::kFallbackStage);
  EXPECT_EQ(events[1].request_id, 9u);   // inherited from the scope
  EXPECT_EQ(events[1].attempt, 3u);
  EXPECT_EQ(events[1].arg, obs::kFallbackStageGreedy);
  obs::EventJournal::global().clear();
}
#else
TEST(EventJournal, JournalMacrosCompileOutEntirely) {
  obs::EventJournal::global().clear();
  HGP_JOURNAL(kSubmit, 9, 0, 0, 0);
  HGP_REQUEST_SCOPE(9, 3);
  HGP_JOURNAL_SCOPED(kFallbackStage, 2, 0);
  EXPECT_TRUE(obs::EventJournal::global().snapshot().empty());
  EXPECT_EQ(obs::RequestScope::current_request_id(), 0u);
}
#endif

// ---------------------------------------------------------------------------
// Macro layer and the HGP_OBS knob

TEST(ObsMacros, CompileOutContractMatchesBuildMode) {
  TraceBuffer& buf = TraceBuffer::global();
  buf.set_enabled(true);
  buf.clear();
  const std::uint64_t before =
      MetricsRegistry::global().counter_value("test.macro_counter");
  {
    HGP_TRACE_SPAN("macro.span");
    HGP_COUNTER_ADD("test.macro_counter", 2);
  }
  const std::uint64_t after =
      MetricsRegistry::global().counter_value("test.macro_counter");
  buf.set_enabled(false);
#if HGP_OBS_ENABLED
  EXPECT_EQ(buf.size(), 1u);
  EXPECT_EQ(after - before, 2u);
#else
  // With HGP_OBS=OFF every macro collapses to a no-op: nothing recorded,
  // nothing registered, arguments not even evaluated.
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(after, 0u);
  EXPECT_EQ(before, 0u);
#endif
  buf.clear();
}

TEST(ObsMacros, DisabledGlobalBufferMakesSpansInert) {
  TraceBuffer& buf = TraceBuffer::global();
  buf.set_enabled(false);
  buf.clear();
  {
    HGP_TRACE_SPAN("macro.inert");
  }
  EXPECT_EQ(buf.size(), 0u);
}

// ---------------------------------------------------------------------------
// SolveTelemetry surface (filled with or without HGP_OBS)

TEST(Telemetry, SolveHgpFillsPhaseTimingsAndDpTotals) {
  Rng rng(11);
  Graph g = gen::planted_partition(16, 4, 0.75, 0.05, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / 16.0);
  const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});

  SolverOptions opt;
  opt.num_trees = 3;
  opt.seed = 5;
  const HgpResult r = solve_hgp(g, h, opt);

  const SolveTelemetry& tm = r.telemetry;
  EXPECT_EQ(tm.trees_attempted, 3);
  EXPECT_EQ(tm.trees_succeeded, 3);
  EXPECT_GT(tm.total_ms, 0.0);
  EXPECT_GE(tm.total_ms,
            tm.forest_build_ms);  // stages are contained in the total
  EXPECT_GE(tm.total_ms, tm.tree_solve_ms);
  EXPECT_EQ(tm.fallback_ms, 0.0);  // primary pipeline won
  EXPECT_GT(tm.dp_signatures, 0u);
  EXPECT_GT(tm.dp_feasible_states, 0u);
  EXPECT_GT(tm.dp_merge_operations, 0u);
  // The winner's stats are a subset of the summed telemetry.
  EXPECT_LE(r.stats.merge_operations, tm.dp_merge_operations);
}

}  // namespace
}  // namespace hgp
