#include <gtest/gtest.h>

#include "core/binarize.hpp"
#include "graph/generators.hpp"

namespace hgp {
namespace {

TEST(Binarize, BinaryTreeUnchanged) {
  const Tree t = Tree::from_parents({-1, 0, 0, 1, 1}, {0, 1, 2, 3, 4});
  const BinarizedTree b = binarize(t);
  EXPECT_EQ(b.tree.node_count(), t.node_count());
  for (Vertex v = 0; v < b.tree.node_count(); ++v) {
    EXPECT_LE(b.tree.children(v).size(), 2u);
    EXPECT_NE(b.original_of[static_cast<std::size_t>(v)], kInvalidVertex);
  }
}

TEST(Binarize, StarBecomesComb) {
  // Root with 5 children → 3 dummies, all fan-outs ≤ 2.
  const Tree t =
      Tree::from_parents({-1, 0, 0, 0, 0, 0}, {0, 1, 2, 3, 4, 5});
  const BinarizedTree b = binarize(t);
  EXPECT_EQ(b.tree.node_count(), 6 + 3);
  int dummies = 0;
  for (Vertex v = 0; v < b.tree.node_count(); ++v) {
    EXPECT_LE(b.tree.children(v).size(), 2u);
    if (b.original_of[static_cast<std::size_t>(v)] == kInvalidVertex) {
      ++dummies;
      EXPECT_TRUE(b.tree.parent_edge_infinite(v))
          << "dummy edges must be uncuttable";
      EXPECT_FALSE(b.tree.is_leaf(v)) << "dummies are never leaves";
    }
  }
  EXPECT_EQ(dummies, 3);
}

TEST(Binarize, OriginalEdgeWeightsPreserved) {
  const Tree t =
      Tree::from_parents({-1, 0, 0, 0, 0}, {0, 10.0, 20.0, 30.0, 40.0});
  const BinarizedTree b = binarize(t);
  for (Vertex v = 0; v < b.tree.node_count(); ++v) {
    const Vertex orig = b.original_of[static_cast<std::size_t>(v)];
    if (orig != kInvalidVertex && orig != t.root()) {
      EXPECT_DOUBLE_EQ(b.tree.parent_weight(v), t.parent_weight(orig));
      EXPECT_EQ(b.tree.parent_edge_infinite(v),
                t.parent_edge_infinite(orig));
    }
  }
}

TEST(Binarize, LeafSetPreservedWithDemands) {
  Rng rng(3);
  const Graph g = gen::random_tree(40, rng, gen::WeightRange{1.0, 9.0});
  Tree t = Tree::from_graph(g, 0);
  std::vector<double> d(t.leaves().size());
  for (auto& x : d) x = rng.next_double(0.1, 0.9);
  t.set_leaf_demands(d);

  const BinarizedTree b = binarize(t);
  EXPECT_EQ(b.tree.leaf_count(), t.leaf_count());
  for (Vertex leaf : b.tree.leaves()) {
    const Vertex orig = b.original_of[static_cast<std::size_t>(leaf)];
    ASSERT_NE(orig, kInvalidVertex);
    EXPECT_TRUE(t.is_leaf(orig));
    EXPECT_DOUBLE_EQ(b.tree.demand(leaf), t.demand(orig));
  }
}

TEST(Binarize, SeparatorCostsAreIdentical) {
  // The key invariant: for any leaf subset, the min separator in the
  // binarized tree equals the min separator in the original (dummy edges
  // are uncuttable, so they never help or hurt).
  Rng rng(4);
  for (int round = 0; round < 10; ++round) {
    const Graph g = gen::random_tree(25, rng, gen::WeightRange{1.0, 9.0});
    const Tree t = Tree::from_graph(g, 0);
    const BinarizedTree b = binarize(t);
    // Map original leaf membership to binarized leaves.
    std::vector<char> orig_set(static_cast<std::size_t>(t.node_count()), 0);
    for (Vertex leaf : t.leaves()) {
      orig_set[static_cast<std::size_t>(leaf)] = rng.next_bool(0.5) ? 1 : 0;
    }
    std::vector<char> bin_set(static_cast<std::size_t>(b.tree.node_count()),
                              0);
    for (Vertex leaf : b.tree.leaves()) {
      bin_set[static_cast<std::size_t>(leaf)] =
          orig_set[static_cast<std::size_t>(
              b.original_of[static_cast<std::size_t>(leaf)])];
    }
    const auto so = t.leaf_separator(orig_set);
    const auto sb = b.tree.leaf_separator(bin_set);
    ASSERT_TRUE(so.feasible);
    ASSERT_TRUE(sb.feasible);
    EXPECT_NEAR(so.weight, sb.weight, 1e-9) << "round " << round;
  }
}

TEST(Binarize, SingleNodeAndChains) {
  const Tree single = Tree::from_parents({-1}, {0});
  EXPECT_EQ(binarize(single).tree.node_count(), 1);
  const Tree chain = Tree::from_parents({-1, 0, 1, 2}, {0, 1, 1, 1});
  const BinarizedTree b = binarize(chain);
  EXPECT_EQ(b.tree.node_count(), 4);  // unary chains stay as-is
}

}  // namespace
}  // namespace hgp
