#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "decomp/builder.hpp"
#include "decomp/frt.hpp"
#include "decomp/quality.hpp"
#include "graph/generators.hpp"
#include "parallel/thread_pool.hpp"

namespace hgp {
namespace {

Graph demo_graph(std::uint64_t seed, Vertex n = 24) {
  Rng rng(seed);
  Graph g = gen::planted_partition(n, 3, 0.7, 0.08, rng,
                                   gen::WeightRange{1.0, 5.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 0.1);
  return g;
}

TEST(DecompBuilder, LeafBijection) {
  const Graph g = demo_graph(1);
  Rng rng(2);
  const SpectralCutter cutter;
  const DecompTree dt = build_decomp_tree(g, rng, cutter);
  EXPECT_EQ(dt.tree().leaf_count(), g.vertex_count());
  std::set<Vertex> seen;
  for (Vertex t : dt.tree().leaves()) {
    seen.insert(dt.vertex_of_leaf(t));
    EXPECT_EQ(dt.leaf_of_vertex(dt.vertex_of_leaf(t)), t);
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(g.vertex_count()));
}

TEST(DecompBuilder, EdgeWeightsAreSubtreeBoundaries) {
  // The defining property: w_T(parent, c) = δ_G(leaves under c).
  const Graph g = demo_graph(3);
  Rng rng(4);
  const FmCutter cutter;
  const DecompTree dt = build_decomp_tree(g, rng, cutter);
  const Tree& t = dt.tree();
  for (Vertex c = 0; c < t.node_count(); ++c) {
    if (c == t.root()) continue;
    // Gather leaves under c.
    std::vector<char> in_g(static_cast<std::size_t>(g.vertex_count()), 0);
    std::vector<Vertex> stack{c};
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      if (t.is_leaf(v)) {
        in_g[static_cast<std::size_t>(dt.vertex_of_leaf(v))] = 1;
      }
      for (Vertex ch : t.children(v)) stack.push_back(ch);
    }
    EXPECT_NEAR(t.parent_weight(c), g.boundary_weight(in_g), 1e-9);
  }
}

TEST(DecompBuilder, DemandsTravelToLeaves) {
  const Graph g = demo_graph(5);
  Rng rng(6);
  const SpectralCutter cutter;
  const DecompTree dt = build_decomp_tree(g, rng, cutter);
  ASSERT_TRUE(dt.tree().has_demands());
  for (Vertex t : dt.tree().leaves()) {
    EXPECT_DOUBLE_EQ(dt.tree().demand(t), g.demand(dt.vertex_of_leaf(t)));
  }
}

TEST(DecompBuilder, HandlesDisconnectedGraphs) {
  GraphBuilder b(6);
  b.add_edge(0, 1, 1.0);
  b.add_edge(2, 3, 1.0);
  b.add_edge(4, 5, 1.0);
  for (Vertex v = 0; v < 6; ++v) b.set_demand(v, 0.3);
  const Graph g = b.build();
  Rng rng(7);
  const SpectralCutter cutter;
  const DecompTree dt = build_decomp_tree(g, rng, cutter);
  EXPECT_EQ(dt.tree().leaf_count(), 6);
  // Cross-component separations are free.
  std::vector<char> in_set(static_cast<std::size_t>(dt.tree().node_count()),
                           0);
  for (Vertex t : dt.tree().leaves()) {
    const Vertex v = dt.vertex_of_leaf(t);
    if (v <= 1) in_set[static_cast<std::size_t>(t)] = 1;
  }
  EXPECT_DOUBLE_EQ(dt.tree().leaf_separator(in_set).weight, 0.0);
}

TEST(DecompBuilder, SingleVertexGraph) {
  GraphBuilder b(1);
  b.set_demand(0, 0.5);
  const Graph g = b.build();
  Rng rng(8);
  const SpectralCutter cutter;
  const DecompTree dt = build_decomp_tree(g, rng, cutter);
  EXPECT_EQ(dt.tree().node_count(), 1);
  EXPECT_EQ(dt.vertex_of_leaf(dt.tree().root()), 0);
}

TEST(DecompBuilder, DeterministicInSeed) {
  const Graph g = demo_graph(9);
  const FmCutter cutter;
  Rng r1(10), r2(10);
  const DecompTree a = build_decomp_tree(g, r1, cutter);
  const DecompTree b = build_decomp_tree(g, r2, cutter);
  ASSERT_EQ(a.tree().node_count(), b.tree().node_count());
  for (Vertex v = 0; v < a.tree().node_count(); ++v) {
    EXPECT_EQ(a.tree().parent(v), b.tree().parent(v));
  }
}

class CutterKinds : public ::testing::TestWithParam<int> {
 protected:
  const Cutter& cutter() const {
    static const SpectralCutter spectral;
    static const RandomCutter random;
    static const FmCutter fm;
    switch (GetParam()) {
      case 0: return spectral;
      case 1: return random;
      default: return fm;
    }
  }
};

TEST_P(CutterKinds, Proposition1HoldsForRandomSubsets) {
  // w_T(CUT_T(P)) ≥ w(δ_G(m(P))) — guaranteed by construction via cut
  // sub-additivity; verified on sampled subsets.
  const Graph g = demo_graph(11, 30);
  Rng rng(12);
  const DecompTree dt = build_decomp_tree(g, rng, cutter());
  const CutQuality q = measure_cut_quality(g, dt, 60, rng);
  ASSERT_GT(q.samples, 0u);
  EXPECT_GE(q.min_ratio, 1.0 - 1e-9)
      << "Proposition 1 violated by " << cutter().name();
}

TEST_P(CutterKinds, SubtreeSetsAreExact) {
  // For a subtree's own leaf set the tree cut is the parent edge = exact
  // boundary, so the ratio is exactly 1 on those samples.
  const Graph g = demo_graph(13, 20);
  Rng rng(14);
  const DecompTree dt = build_decomp_tree(g, rng, cutter());
  const Tree& t = dt.tree();
  for (Vertex c = 0; c < t.node_count(); ++c) {
    if (c == t.root() || t.is_leaf(c)) continue;
    std::vector<char> in_set(static_cast<std::size_t>(t.node_count()), 0);
    std::vector<Vertex> stack{c};
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      if (t.is_leaf(v)) in_set[static_cast<std::size_t>(v)] = 1;
      for (Vertex ch : t.children(v)) stack.push_back(ch);
    }
    const double r = cut_ratio(g, dt, in_set);
    if (r > 0) {
      EXPECT_NEAR(r, 1.0, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCutters, CutterKinds, ::testing::Values(0, 1, 2));

TEST(DecompForest, CountAndIndependence) {
  const Graph g = demo_graph(15);
  const FmCutter cutter;
  const auto forest = build_decomposition_forest(g, 3, 99, cutter);
  ASSERT_EQ(forest.size(), 3u);
  // Trees from different forks should (generically) differ.
  bool any_diff = false;
  for (Vertex v = 0;
       v < std::min(forest[0].tree().node_count(),
                    forest[1].tree().node_count());
       ++v) {
    if (forest[0].tree().parent(v) != forest[1].tree().parent(v)) {
      any_diff = true;
      break;
    }
  }
  any_diff |= forest[0].tree().node_count() != forest[1].tree().node_count();
  EXPECT_TRUE(any_diff);
}

TEST(DecompForest, ParallelBuildMatchesSequential) {
  const Graph g = demo_graph(16);
  const SpectralCutter cutter;
  ThreadPool pool(2);
  const auto seq = build_decomposition_forest(g, 3, 7, cutter);
  const auto par = build_decomposition_forest(g, 3, 7, cutter, &pool);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    ASSERT_EQ(seq[i].tree().node_count(), par[i].tree().node_count());
    for (Vertex v = 0; v < seq[i].tree().node_count(); ++v) {
      EXPECT_EQ(seq[i].tree().parent(v), par[i].tree().parent(v));
    }
  }
}

TEST(DecompQuality, SpectralBeatsRandomOnClusteredGraphs) {
  const Graph g = demo_graph(17, 36);
  Rng rng(18);
  const SpectralCutter spectral;
  const RandomCutter random;
  Rng r1 = rng.fork(1), r2 = rng.fork(2), r3 = rng.fork(3);
  const DecompTree ds = build_decomp_tree(g, r1, spectral);
  const DecompTree dr = build_decomp_tree(g, r2, random);
  const CutQuality qs = measure_cut_quality(g, ds, 80, r3);
  const CutQuality qr = measure_cut_quality(g, dr, 80, r3);
  EXPECT_LT(qs.mean_ratio, qr.mean_ratio)
      << "spectral trees should approximate cuts better than random trees";
}

TEST(FrtTree, LeafBijectionAndDemands) {
  const Graph g = demo_graph(31);
  Rng rng(32);
  const DecompTree dt = build_frt_tree(g, rng);
  EXPECT_EQ(dt.tree().leaf_count(), g.vertex_count());
  std::set<Vertex> seen;
  for (Vertex t : dt.tree().leaves()) {
    seen.insert(dt.vertex_of_leaf(t));
    EXPECT_DOUBLE_EQ(dt.tree().demand(t), g.demand(dt.vertex_of_leaf(t)));
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(g.vertex_count()));
}

TEST(FrtTree, Proposition1StillHolds) {
  // Edge weights are recomputed as exact boundaries, so the cut domination
  // property is preserved regardless of the metric split structure.
  const Graph g = demo_graph(33, 28);
  Rng rng(34);
  const DecompTree dt = build_frt_tree(g, rng);
  const CutQuality q = measure_cut_quality(g, dt, 60, rng);
  ASSERT_GT(q.samples, 0u);
  EXPECT_GE(q.min_ratio, 1.0 - 1e-9);
}

TEST(FrtTree, DeterministicInSeed) {
  const Graph g = demo_graph(35);
  Rng r1(36), r2(36);
  const DecompTree a = build_frt_tree(g, r1);
  const DecompTree b = build_frt_tree(g, r2);
  ASSERT_EQ(a.tree().node_count(), b.tree().node_count());
  for (Vertex v = 0; v < a.tree().node_count(); ++v) {
    EXPECT_EQ(a.tree().parent(v), b.tree().parent(v));
  }
}

TEST(FrtTree, HandlesDisconnectedGraphs) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 5.0);
  b.add_edge(2, 3, 5.0);
  for (Vertex v = 0; v < 4; ++v) b.set_demand(v, 0.2);
  Rng rng(37);
  const DecompTree dt = build_frt_tree(b.build(), rng);
  EXPECT_EQ(dt.tree().leaf_count(), 4);
}

TEST(FrtTree, GroupsHeavyCommunicators) {
  // Two heavy pairs joined by a light bridge: the 1/w metric puts each
  // pair at tiny distance, so some subtree contains exactly one pair.
  GraphBuilder b(4);
  b.add_edge(0, 1, 100.0);
  b.add_edge(2, 3, 100.0);
  b.add_edge(1, 2, 0.1);
  for (Vertex v = 0; v < 4; ++v) b.set_demand(v, 0.2);
  const Graph g = b.build();
  Rng rng(38);
  const DecompTree dt = build_frt_tree(g, rng);
  const Tree& t = dt.tree();
  // Find the pair {0,1} as the leaf set of some internal node.
  bool found = false;
  for (Vertex v = 0; v < t.node_count(); ++v) {
    if (t.is_leaf(v) || v == t.root()) continue;
    std::vector<Vertex> leaves;
    std::vector<Vertex> stack{v};
    while (!stack.empty()) {
      const Vertex x = stack.back();
      stack.pop_back();
      if (t.is_leaf(x)) leaves.push_back(dt.vertex_of_leaf(x));
      for (Vertex c : t.children(x)) stack.push_back(c);
    }
    std::sort(leaves.begin(), leaves.end());
    if (leaves == std::vector<Vertex>{0, 1} ||
        leaves == std::vector<Vertex>{2, 3}) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace hgp
