#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/gomory_hu.hpp"
#include "graph/maxflow.hpp"

namespace hgp {
namespace {

TEST(GomoryHu, PathGraph) {
  // On a path the GH tree is the path itself: min cut between endpoints is
  // the lightest internal edge.
  GraphBuilder b(4);
  b.add_edge(0, 1, 3.0);
  b.add_edge(1, 2, 1.0);
  b.add_edge(2, 3, 2.0);
  const Graph g = b.build();
  const GomoryHuTree t = gomory_hu_tree(g);
  EXPECT_DOUBLE_EQ(t.min_cut(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(t.min_cut(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(t.min_cut(2, 3), 2.0);
}

TEST(GomoryHu, MatchesDirectMaxFlowOnAllPairs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 11);
    Graph g = gen::erdos_renyi(12, 0.4, rng, gen::WeightRange{1.0, 9.0});
    if (!g.is_connected()) continue;
    const GomoryHuTree t = gomory_hu_tree(g);
    for (Vertex u = 0; u < g.vertex_count(); ++u) {
      for (Vertex v = narrow<Vertex>(u + 1); v < g.vertex_count(); ++v) {
        EXPECT_NEAR(t.min_cut(u, v), Dinic::min_st_cut(g, u, v).value, 1e-9)
            << "pair (" << u << "," << v << ") seed " << seed;
      }
    }
  }
}

TEST(GomoryHu, TreeStructureIsValid) {
  Rng rng(3);
  const Graph g = gen::barabasi_albert(20, 2, rng, gen::WeightRange{1.0, 5.0});
  const GomoryHuTree t = gomory_hu_tree(g);
  ASSERT_EQ(t.parent.size(), 20u);
  EXPECT_EQ(t.parent[0], kInvalidVertex);
  // Every non-root reaches the root (no cycles).
  for (Vertex v = 1; v < 20; ++v) {
    Vertex x = v;
    int steps = 0;
    while (t.parent[static_cast<std::size_t>(x)] != kInvalidVertex) {
      x = t.parent[static_cast<std::size_t>(x)];
      ASSERT_LT(++steps, 21) << "cycle reaching root from " << v;
    }
  }
}

TEST(GomoryHu, RejectsDegenerateInputs) {
  GraphBuilder lone(1);
  EXPECT_THROW(gomory_hu_tree(lone.build()), CheckError);
  GraphBuilder split(4);
  split.add_edge(0, 1, 1.0);
  split.add_edge(2, 3, 1.0);
  EXPECT_THROW(gomory_hu_tree(split.build()), CheckError);
}

TEST(GomoryHu, MinCutArgumentValidation) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 1.0);
  b.add_edge(1, 2, 1.0);
  const GomoryHuTree t = gomory_hu_tree(b.build());
  EXPECT_THROW(t.min_cut(0, 0), CheckError);
  EXPECT_THROW(t.min_cut(0, 5), CheckError);
}

}  // namespace
}  // namespace hgp
