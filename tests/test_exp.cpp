#include <gtest/gtest.h>

#include "exp/algorithms.hpp"
#include "exp/report.hpp"
#include "exp/workloads.hpp"
#include "hierarchy/cost.hpp"

namespace hgp {
namespace {

TEST(Workloads, EveryFamilyProducesAValidInstance) {
  const Hierarchy h = exp::hierarchy_two_level(2, 4);
  for (const auto family : exp::all_families()) {
    const Graph g = exp::make_workload(family, 48, h, 5);
    EXPECT_GT(g.vertex_count(), 0) << exp::family_name(family);
    EXPECT_GT(g.edge_count(), 0) << exp::family_name(family);
    ASSERT_TRUE(g.has_demands()) << exp::family_name(family);
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      EXPECT_GT(g.demand(v), 0.0);
      EXPECT_LE(g.demand(v), 1.0);
    }
  }
}

TEST(Workloads, LoadFactorControlsTotalDemand) {
  const Hierarchy h = exp::hierarchy_two_level(2, 4);
  const Graph light =
      exp::make_workload(exp::Family::Random, 60, h, 3, 0.3);
  const Graph heavy =
      exp::make_workload(exp::Family::Random, 60, h, 3, 0.9);
  const double cap = static_cast<double>(h.leaf_count());
  EXPECT_NEAR(light.total_demand(), 0.3 * cap, 0.1 * cap);
  EXPECT_NEAR(heavy.total_demand(), 0.9 * cap, 0.15 * cap);
}

TEST(Workloads, DeterministicInSeed) {
  const Hierarchy h = exp::hierarchy_two_level(2, 2);
  const Graph a = exp::make_workload(exp::Family::ScaleFree, 40, h, 9);
  const Graph b = exp::make_workload(exp::Family::ScaleFree, 40, h, 9);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.demands(), b.demands());
}

TEST(Workloads, TreeWorkloadScalesToHierarchy) {
  const Hierarchy h = exp::hierarchy_of_height(3);
  const Tree t = exp::make_tree_workload(80, h, 11, 0.5);
  EXPECT_NEAR(t.total_demand(), 0.5 * static_cast<double>(h.leaf_count()),
              0.1 * static_cast<double>(h.leaf_count()));
}

TEST(Workloads, AutoUnitsGivesRoughPerJobResolution) {
  const Hierarchy h = exp::hierarchy_two_level(2, 2);
  const Tree t = exp::make_tree_workload(60, h, 13, 0.6);
  const DemandUnits u = exp::auto_units(t, h, 2.0);
  // Average job should land near 2 units.
  double avg = 0;
  for (Vertex leaf : t.leaves()) {
    avg += t.demand(leaf) * static_cast<double>(u);
  }
  avg /= static_cast<double>(t.leaf_count());
  EXPECT_GT(avg, 1.0);
  EXPECT_LT(avg, 4.0);
}

TEST(Workloads, StandardHierarchies) {
  EXPECT_EQ(exp::hierarchy_socket_core_ht().leaf_count(), 16);
  EXPECT_EQ(exp::hierarchy_two_level(2, 4).leaf_count(), 8);
  EXPECT_EQ(exp::hierarchy_flat(5).height(), 1);
  const Hierarchy deep = exp::hierarchy_of_height(3);
  EXPECT_EQ(deep.height(), 3);
  EXPECT_TRUE(deep.is_normalized());
}

TEST(Algorithms, RegistryRunsEveryEntry) {
  const Hierarchy h = exp::hierarchy_two_level(2, 2);
  const Graph g = exp::make_workload(exp::Family::PlantedPartition, 24, h, 3);
  for (const auto& a : exp::comparison_algorithms(0.5, 2, 8)) {
    const auto res = a.run(g, h, 7);
    EXPECT_EQ(res.placement.leaf_of.size(),
              static_cast<std::size_t>(g.vertex_count()))
        << a.name;
    EXPECT_NEAR(res.cost, placement_cost(g, h, res.placement), 1e-9) << a.name;
    EXPECT_GE(res.max_violation, 0.0) << a.name;
    EXPECT_GE(res.seconds, 0.0) << a.name;
  }
}

TEST(Algorithms, SolverEntryIsDeterministic) {
  const Hierarchy h = exp::hierarchy_two_level(2, 2);
  const Graph g = exp::make_workload(exp::Family::Random, 20, h, 5);
  const auto solver = exp::solver_algorithm(0.5, 2, 8);
  const auto a = solver.run(g, h, 13);
  const auto b = solver.run(g, h, 13);
  EXPECT_EQ(a.placement.leaf_of, b.placement.leaf_of);
  EXPECT_EQ(a.cost, b.cost);
}

TEST(Report, CheckReturnsItsVerdict) {
  EXPECT_TRUE(exp::check("tautology", true));
  EXPECT_FALSE(exp::check("contradiction", false));
}

}  // namespace
}  // namespace hgp
