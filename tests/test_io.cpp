#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace hgp {
namespace {

void expect_same_graph(const Graph& a, const Graph& b, bool check_demands) {
  ASSERT_EQ(a.vertex_count(), b.vertex_count());
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (EdgeId e = 0; e < a.edge_count(); ++e) {
    EXPECT_EQ(a.edge(e).u, b.edge(e).u);
    EXPECT_EQ(a.edge(e).v, b.edge(e).v);
    EXPECT_NEAR(a.edge(e).weight, b.edge(e).weight, 1e-9);
  }
  if (check_demands) {
    ASSERT_EQ(a.has_demands(), b.has_demands());
    for (Vertex v = 0; v < a.vertex_count(); ++v) {
      EXPECT_NEAR(a.demand(v), b.demand(v), 1e-3);
    }
  }
}

TEST(MetisIo, RoundTripPlainGraph) {
  const Graph g = gen::grid2d(4, 5);
  std::stringstream ss;
  io::write_metis(g, ss);
  const Graph h = io::read_metis(ss);
  expect_same_graph(g, h, false);
}

TEST(MetisIo, RoundTripWeightsAndDemands) {
  Rng rng(3);
  Graph g = gen::erdos_renyi(30, 0.2, rng, gen::WeightRange{1.0, 9.0});
  gen::set_random_demands(g, rng, 0.05, 0.9);
  // METIS stores integer weights; snap ours first so the round trip is exact.
  {
    GraphBuilder b(g.vertex_count());
    for (const Edge& e : g.edges()) {
      b.add_edge(e.u, e.v, std::round(e.weight));
    }
    for (Vertex v = 0; v < g.vertex_count(); ++v) b.set_demand(v, g.demand(v));
    g = b.build();
  }
  std::stringstream ss;
  io::write_metis(g, ss);
  const Graph h = io::read_metis(ss);
  expect_same_graph(g, h, true);
}

TEST(MetisIo, ParsesCommentsAndFmtCodes) {
  std::stringstream ss(
      "% a comment\n"
      "3 2 001\n"
      "2 5\n"
      "1 5 3 7\n"
      "2 7\n");
  const Graph g = io::read_metis(ss);
  EXPECT_EQ(g.vertex_count(), 3);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 12.0);
}

TEST(MetisIo, HeaderEdgeMismatchThrows) {
  std::stringstream ss("2 5\n2\n1\n");
  EXPECT_THROW(io::read_metis(ss), CheckError);
}

TEST(MetisIo, MissingHeaderThrows) {
  std::stringstream ss("");
  EXPECT_THROW(io::read_metis(ss), CheckError);
}

TEST(MetisIo, NeighbourOutOfRangeThrows) {
  std::stringstream ss("2 1\n3\n1\n");
  EXPECT_THROW(io::read_metis(ss), CheckError);
}

TEST(MetisIo, MalformedHeaderThrows) {
  std::stringstream ss("abc def\n");
  EXPECT_THROW(io::read_metis(ss), CheckError);
}

TEST(MetisIo, NegativeHeaderCountsThrow) {
  std::stringstream ss("-2 1\n");
  EXPECT_THROW(io::read_metis(ss), CheckError);
}

TEST(MetisIo, NanEdgeWeightThrows) {
  std::stringstream ss("2 1 001\n2 nan\n1 nan\n");
  EXPECT_THROW(io::read_metis(ss), CheckError);
}

TEST(MetisIo, NegativeEdgeWeightThrows) {
  std::stringstream ss("2 1 001\n2 -3\n1 -3\n");
  EXPECT_THROW(io::read_metis(ss), CheckError);
}

TEST(MetisIo, NegativeVertexWeightThrows) {
  std::stringstream ss("2 1 010\n-5 2\n5 1\n");
  EXPECT_THROW(io::read_metis(ss), CheckError);
}

TEST(MetisIo, GarbageTokenNoLongerSilentlyMisparses) {
  // Before hardening, a non-numeric token silently truncated the line and
  // the rest of the adjacency list was dropped.
  std::stringstream ss("3 2\n2 x\n1 3\n2\n");
  EXPECT_THROW(io::read_metis(ss), CheckError);
}

TEST(MetisIo, ExtraBodyLinesThrow) {
  std::stringstream ss("2 1\n2\n1\n1\n");
  EXPECT_THROW(io::read_metis(ss), CheckError);
}

TEST(MetisIo, TrailingBlankLinesAreFine) {
  std::stringstream ss("2 1\n2\n1\n\n  \n");
  const Graph g = io::read_metis(ss);
  EXPECT_EQ(g.vertex_count(), 2);
  EXPECT_EQ(g.edge_count(), 1);
}

TEST(MetisIo, ErrorsCarryLineNumbers) {
  std::stringstream ss(
      "% comment\n"
      "3 2 001\n"
      "2 5\n"
      "1 5 3 bad\n"
      "2 7\n");
  try {
    io::read_metis(ss);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << e.what();
  }
}

TEST(MetisIo, OutOfRangeNeighbourNamesLine) {
  std::stringstream ss("2 1\n7\n1\n");
  try {
    io::read_metis(ss);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("out of range"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
  }
}

TEST(EdgeListIo, RoundTrip) {
  Rng rng(5);
  const Graph g = gen::barabasi_albert(40, 2, rng, gen::WeightRange{1.0, 4.0});
  std::stringstream ss;
  io::write_edge_list(g, ss);
  const Graph h = io::read_edge_list(ss, g.vertex_count());
  expect_same_graph(g, h, false);
}

TEST(EdgeListIo, InfersVertexCountAndSkipsComments) {
  std::stringstream ss("# header\n0 3 2.0\n1 2\n");
  const Graph g = io::read_edge_list(ss);
  EXPECT_EQ(g.vertex_count(), 4);
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_DOUBLE_EQ(g.total_edge_weight(), 3.0);
}

TEST(EdgeListIo, MalformedLineThrows) {
  std::stringstream ss("0\n");
  EXPECT_THROW(io::read_edge_list(ss), CheckError);
}

}  // namespace
}  // namespace hgp
