// Golden regression suite: committed METIS instances with committed
// end-to-end costs.
//
// Guards the whole pipeline — METIS parsing, demand handling, forest
// sampling, the signature DP, conversion and mapped-back costing — against
// silent behavior drift: any change that shifts a canonical-solve cost
// fails here and must refresh the corpus deliberately with tools/hgp_golden
// (see golden_corpus.hpp for the rules).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "golden_corpus.hpp"
#include "graph/io.hpp"

#ifndef HGP_GOLDEN_DIR
#error "HGP_GOLDEN_DIR must point at the committed corpus directory"
#endif

namespace hgp {
namespace {

struct Expected {
  std::string name;
  std::string hierarchy;
  double cost = 0;
};

std::vector<Expected> load_expected() {
  std::ifstream tsv(std::string(HGP_GOLDEN_DIR) + "/expected.tsv");
  std::vector<Expected> rows;
  std::string line;
  while (std::getline(tsv, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream row(line);
    Expected e;
    row >> e.name >> e.hierarchy >> e.cost;
    rows.push_back(std::move(e));
  }
  return rows;
}

TEST(Golden, CorpusCoversEverySpec) {
  const std::vector<Expected> rows = load_expected();
  ASSERT_GE(rows.size(), 12u);
  std::set<std::string> names;
  for (const Expected& e : rows) names.insert(e.name);
  for (const golden::Spec& spec : golden::corpus()) {
    EXPECT_TRUE(names.count(spec.name))
        << "spec " << spec.name
        << " missing from expected.tsv; run tools/hgp_golden to refresh";
  }
}

TEST(Golden, CommittedCostsReproduce) {
  const std::vector<Expected> rows = load_expected();
  ASSERT_GE(rows.size(), 12u) << "corpus missing or unreadable";
  for (const Expected& e : rows) {
    SCOPED_TRACE(e.name);
    const Graph g = io::read_metis_file(std::string(HGP_GOLDEN_DIR) + "/" +
                                        e.name + ".graph");
    const Hierarchy h = golden::hierarchy_by_name(e.hierarchy);
    const HgpResult r = solve_hgp(g, h, golden::canonical_options());
    ASSERT_FALSE(r.degraded()) << r.status.to_string();
    EXPECT_NEAR(r.cost, e.cost, 1e-6 * std::max(1.0, std::abs(e.cost)))
        << "cost drift; if intended, refresh with tools/hgp_golden";
  }
}

TEST(Golden, MetisRoundTripPreservesFingerprintRelevantContent) {
  // The corpus files are the canonical serialization: writing what we read
  // must reproduce the identical graph (vertices, edges, weights, demands
  // at file precision).
  for (const golden::Spec& spec : golden::corpus()) {
    SCOPED_TRACE(spec.name);
    const std::string path =
        std::string(HGP_GOLDEN_DIR) + "/" + spec.name + ".graph";
    const Graph g = io::read_metis_file(path);
    std::ostringstream out;
    io::write_metis(g, out);
    std::istringstream in(out.str());
    const Graph again = io::read_metis(in);
    ASSERT_EQ(g.vertex_count(), again.vertex_count());
    ASSERT_EQ(g.edge_count(), again.edge_count());
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      EXPECT_EQ(g.edge(e).u, again.edge(e).u);
      EXPECT_EQ(g.edge(e).v, again.edge(e).v);
      EXPECT_DOUBLE_EQ(g.edge(e).weight, again.edge(e).weight);
    }
    ASSERT_EQ(g.has_demands(), again.has_demands());
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      if (g.has_demands()) {
        EXPECT_DOUBLE_EQ(g.demand(v), again.demand(v));
      }
    }
  }
}

}  // namespace
}  // namespace hgp
