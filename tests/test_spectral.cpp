#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/spectral.hpp"

namespace hgp {
namespace {

TEST(Fiedler, OrthogonalToConstantAndUnitNorm) {
  Rng rng(1);
  const Graph g = gen::grid2d(5, 5);
  const auto f = fiedler_vector(g, rng);
  double sum = 0, norm = 0;
  for (double x : f) {
    sum += x;
    norm += x * x;
  }
  EXPECT_NEAR(sum, 0.0, 1e-6);
  EXPECT_NEAR(norm, 1.0, 1e-6);
}

TEST(Fiedler, SeparatesTwoCliquesJoinedByABridge) {
  // Two K5s joined by a single light edge: the Fiedler vector's sign splits
  // them.
  GraphBuilder b(10);
  for (Vertex u = 0; u < 5; ++u)
    for (Vertex v = u + 1; v < 5; ++v) b.add_edge(u, v, 1.0);
  for (Vertex u = 5; u < 10; ++u)
    for (Vertex v = u + 1; v < 10; ++v) b.add_edge(u, v, 1.0);
  b.add_edge(4, 5, 0.1);
  Rng rng(2);
  const auto f = fiedler_vector(b.build(), rng);
  for (Vertex v = 0; v < 5; ++v) {
    for (Vertex u = 5; u < 10; ++u) {
      EXPECT_LT(f[static_cast<std::size_t>(v)] * f[static_cast<std::size_t>(u)],
                0.0)
          << "vertices " << v << " and " << u << " on same side";
    }
  }
}

TEST(Fiedler, PathGraphIsMonotone) {
  GraphBuilder b(8);
  for (Vertex v = 0; v + 1 < 8; ++v) b.add_edge(v, v + 1, 1.0);
  Rng rng(3);
  auto f = fiedler_vector(b.build(), rng);
  if (f.front() > f.back()) {
    for (auto& x : f) x = -x;  // eigenvectors have sign freedom
  }
  for (std::size_t i = 0; i + 1 < f.size(); ++i) {
    EXPECT_LE(f[i], f[i + 1] + 1e-5);
  }
}

TEST(SpectralBisect, BothSidesNonEmpty) {
  Rng rng(4);
  const Graph g = gen::erdos_renyi(30, 0.2, rng);
  const auto side = spectral_bisect(g, rng);
  int ones = 0;
  for (char c : side) ones += c;
  EXPECT_GT(ones, 0);
  EXPECT_LT(ones, 30);
}

TEST(SpectralBisect, RoughDemandBalance) {
  Rng rng(5);
  Graph g = gen::grid2d(6, 6);
  gen::set_uniform_demands(g, 0.02);
  const auto side = spectral_bisect(g, rng);
  double load1 = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    if (side[static_cast<std::size_t>(v)]) load1 += g.demand(v);
  }
  const double total = g.total_demand();
  EXPECT_GT(load1, 0.3 * total);
  EXPECT_LT(load1, 0.7 * total);
}

TEST(SpectralBisect, CutQualityBeatsWorstCaseOnCliquePair) {
  GraphBuilder b(12);
  for (Vertex u = 0; u < 6; ++u)
    for (Vertex v = u + 1; v < 6; ++v) b.add_edge(u, v, 1.0);
  for (Vertex u = 6; u < 12; ++u)
    for (Vertex v = u + 1; v < 12; ++v) b.add_edge(u, v, 1.0);
  b.add_edge(0, 6, 1.0);
  const Graph g = b.build();
  Rng rng(6);
  const auto side = spectral_bisect(g, rng);
  EXPECT_DOUBLE_EQ(g.cut_weight(side), 1.0);  // finds the bridge
}

TEST(SpectralBisect, EdgelessGraphStillSplits) {
  GraphBuilder b(4);
  const Graph g = b.build();
  Rng rng(7);
  const auto side = spectral_bisect(g, rng);
  int ones = 0;
  for (char c : side) ones += c;
  EXPECT_GT(ones, 0);
  EXPECT_LT(ones, 4);
}

TEST(SpectralBisect, TwoVertexGraph) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 1.0);
  Rng rng(8);
  const auto side = spectral_bisect(b.build(), rng);
  EXPECT_NE(side[0], side[1]);
}

}  // namespace
}  // namespace hgp
