#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "runtime/forest_cache.hpp"
#include "runtime/solver.hpp"

namespace hgp {
namespace {

Graph workload(std::uint64_t seed, Vertex n = 24) {
  Rng rng(seed);
  Graph g = gen::planted_partition(n, 4, 0.75, 0.05, rng,
                                   gen::WeightRange{2.0, 6.0},
                                   gen::WeightRange{1.0, 2.0});
  gen::set_uniform_demands(g, 4.0 / n);
  return g;
}

const Hierarchy& hier() {
  static const Hierarchy h({2, 2}, {4.0, 1.0, 0.0});
  return h;
}

CachedForest dummy_forest() {
  return std::make_shared<const std::vector<DecompTree>>();
}

TEST(GraphFingerprint, ContentDeterminesTheHash) {
  const Graph a = workload(1);
  const Graph b = workload(1);  // rebuilt from the same seed
  const Graph c = workload(2);
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(b));
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(c));
}

TEST(GraphFingerprint, DemandsAreCommitted) {
  Graph a = workload(3);
  Graph b = workload(3);
  std::vector<double> d = b.demands();
  d[0] = d[0] / 2;
  b.set_demands(std::move(d));
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(b));
}

TEST(ForestCache, LruEvictionAndPromotion) {
  ForestCache cache(2);
  const ForestCacheKey k1{1, 1, 2, "spectral"};
  const ForestCacheKey k2{2, 1, 2, "spectral"};
  const ForestCacheKey k3{3, 1, 2, "spectral"};
  cache.insert(k1, dummy_forest());
  cache.insert(k2, dummy_forest());
  EXPECT_NE(cache.find(k1), nullptr);  // promotes k1 over k2
  cache.insert(k3, dummy_forest());    // evicts k2, the LRU entry
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find(k1), nullptr);
  EXPECT_EQ(cache.find(k2), nullptr);
  EXPECT_NE(cache.find(k3), nullptr);
}

TEST(ForestCache, KeyCommitsToEveryField) {
  ForestCache cache(8);
  const ForestCacheKey base{7, 3, 4, "spectral"};
  cache.insert(base, dummy_forest());
  EXPECT_NE(cache.find(base), nullptr);
  EXPECT_EQ(cache.find(ForestCacheKey{8, 3, 4, "spectral"}), nullptr);
  EXPECT_EQ(cache.find(ForestCacheKey{7, 4, 4, "spectral"}), nullptr);
  EXPECT_EQ(cache.find(ForestCacheKey{7, 3, 5, "spectral"}), nullptr);
  EXPECT_EQ(cache.find(ForestCacheKey{7, 3, 4, "random"}), nullptr);
}

TEST(ForestCache, ZeroCapacityDisables) {
  ForestCache cache(0);
  EXPECT_FALSE(cache.enabled());
  const ForestCacheKey k{1, 1, 1, "spectral"};
  cache.insert(k, dummy_forest());
  EXPECT_EQ(cache.find(k), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ForestCache, RepeatedSolveHitsAndMatches) {
  const Graph g = workload(11);
  SolverOptions opt;
  opt.num_trees = 2;
  opt.seed = 5;
  const HgpResult cold = solve_hgp(g, hier(), opt);
  const HgpResult warm = solve_hgp(g, hier(), opt);
  ASSERT_FALSE(cold.degraded());
  ASSERT_FALSE(warm.degraded());
  EXPECT_TRUE(warm.telemetry.forest_cache_hit);
  // The cached forest is the one that would have been rebuilt, so the
  // whole solve is reproduced exactly.
  EXPECT_EQ(cold.cost, warm.cost);
  EXPECT_EQ(cold.best_tree, warm.best_tree);
  EXPECT_EQ(cold.tree_costs, warm.tree_costs);
}

TEST(ForestCache, DifferentSeedMisses) {
  const Graph g = workload(12);
  SolverOptions opt;
  opt.num_trees = 2;
  opt.seed = 5;
  (void)solve_hgp(g, hier(), opt);
  opt.seed = 6;
  const HgpResult other = solve_hgp(g, hier(), opt);
  EXPECT_FALSE(other.telemetry.forest_cache_hit);
}

}  // namespace
}  // namespace hgp
